package multinode

import (
	"context"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/mapreduce"
)

// Hadoop wraps the MapReduce engine with the virtual cluster's task
// scheduler: map/reduce waves are spread over simulated nodes and shuffle
// traffic is charged to the network. Reported timings are virtual makespans
// split by job family (Hive jobs = data management, Mahout jobs =
// analytics).
type Hadoop struct {
	inner *mapreduce.Engine
	c     *cluster.Cluster
	sched *cluster.MRScheduler
}

// NewHadoop creates a multi-node Hadoop configuration.
func NewHadoop(nodes int) *Hadoop {
	c := cluster.New(cluster.DefaultConfig(nodes))
	sched := &cluster.MRScheduler{C: c}
	inner := mapreduce.New()
	inner.Sched = sched
	inner.Splits = nodes * 2 // two map slots per node, Hadoop's default shape
	if inner.Splits < mapreduce.DefaultSplits {
		inner.Splits = mapreduce.DefaultSplits
	}
	return &Hadoop{inner: inner, c: c, sched: sched}
}

// Cluster exposes the virtual cluster.
func (h *Hadoop) Cluster() *cluster.Cluster { return h.c }

// Name implements engine.Engine.
func (h *Hadoop) Name() string { return "hadoop" }

// Supports implements engine.Engine.
func (h *Hadoop) Supports(q engine.QueryID) bool { return h.inner.Supports(q) }

// Load implements engine.Engine.
func (h *Hadoop) Load(ds *datagen.Dataset) error { return h.inner.Load(ds) }

// Close implements engine.Engine.
func (h *Hadoop) Close() error { return h.inner.Close() }

// Run implements engine.Engine: execute the MR jobs, then report the virtual
// makespan attributed by job family instead of the serial wall clock.
func (h *Hadoop) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	h.c.Reset()
	h.sched.ResetAccounting()
	res, err := h.inner.Run(ctx, q, p)
	if err != nil {
		return nil, err
	}
	res.Timing = engine.Timing{
		DataManagement: secToDur(h.sched.DMSeconds),
		Analytics:      secToDur(h.sched.AnalyticsSeconds),
	}
	return res, nil
}
