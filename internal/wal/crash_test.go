package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// buildCrashFixture builds a reference store — 24 appends, a checkpoint, 8
// more appends — and captures the full WAL bytes at "crash time", every
// record boundary, and the pre-crash epoch-1 goldens (segment digest and
// snapshot hash) the matrix compares recovered state against.
func buildCrashFixture(t *testing.T) ([]byte, []int, [DigestSize]byte, string) {
	t.Helper()
	base := testBase(t)
	dir := t.TempDir()
	s := openTestStore(t, dir, base)
	gen := NewRowGen(base, 2026)
	appendN(t, s, gen, 24)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, gen, 8)
	digest1, err := s.SegmentDigest(1)
	if err != nil {
		t.Fatal(err)
	}
	sn1, err := s.SnapshotAt(1)
	if err != nil {
		t.Fatal(err)
	}
	snapHash1 := sn1.Hash()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{0}
	off := 0
	for off < len(raw) {
		_, n, err := ParseRecord(raw[off:])
		if err != nil {
			t.Fatalf("reference WAL corrupt at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	if off != len(raw) {
		t.Fatalf("reference WAL has %d trailing bytes", len(raw)-off)
	}
	if got := len(bounds) - 1; got != 24+1+8 {
		t.Fatalf("reference WAL has %d records, want 33", got)
	}
	return raw, bounds, digest1, snapHash1
}

// writeWAL materializes one crash image and returns its directory.
func writeWAL(t *testing.T, img []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logFile), img, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// expectedState scans a crash image the way recovery will and returns the
// independent prediction: clean prefix length, recovered epoch, delta rows.
func expectedState(t *testing.T, img []byte) (clean int, epoch uint64, delta int) {
	t.Helper()
	clean, err := Scan(img, func(rec Record) error {
		if rec.Type == RecCheckpoint {
			epoch++
			delta = 0
		} else {
			delta++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clean, epoch, delta
}

// checkRecovery opens a store over one crash image and asserts convergence:
// state matches the prediction, epoch-1 goldens match the pre-crash fixture,
// the torn tail is repaired on disk, and a second open reproduces the first.
func checkRecovery(t *testing.T, img []byte, digest1 [DigestSize]byte, snapHash1 string) {
	t.Helper()
	base := testBase(t)
	wantClean, wantEpoch, wantDelta := expectedState(t, img)
	dir := writeWAL(t, img)

	s, err := Open(dir, base)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	rt := s.Recovery()
	if s.Epoch() != wantEpoch || s.DeltaRows() != wantDelta {
		t.Fatalf("recovered epoch %d delta %d, want %d/%d", s.Epoch(), s.DeltaRows(), wantEpoch, wantDelta)
	}
	if rt.BytesReplayed != int64(wantClean) || rt.BytesDiscarded != int64(len(img)-wantClean) {
		t.Fatalf("accounting replayed %d discarded %d, want %d/%d",
			rt.BytesReplayed, rt.BytesDiscarded, wantClean, len(img)-wantClean)
	}
	var hash string
	if wantEpoch >= 1 {
		// Convergence to byte-identical segments: the re-folded segment's
		// digest equals the pre-crash golden (Open already verified it
		// against the checkpoint record; this pins it to the fixture).
		got, err := s.SegmentDigest(1)
		if err != nil {
			t.Fatal(err)
		}
		if got != digest1 {
			t.Fatal("recovered segment digest diverged from pre-crash golden")
		}
		sn, err := s.SnapshotAt(1)
		if err != nil {
			t.Fatal(err)
		}
		if hash = sn.Hash(); hash != snapHash1 {
			t.Fatal("recovered snapshot hash diverged from pre-crash checkpoint golden")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn tail was repaired: the file now ends at the clean prefix.
	fi, err := os.Stat(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(wantClean) {
		t.Fatalf("repaired file is %d bytes, want clean prefix %d", fi.Size(), wantClean)
	}

	// Recovery is idempotent: a second open converges to the same state.
	s2, err := Open(dir, base)
	if err != nil {
		t.Fatalf("re-recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.Epoch() != wantEpoch || s2.DeltaRows() != wantDelta {
		t.Fatalf("re-recovery diverged: epoch %d delta %d", s2.Epoch(), s2.DeltaRows())
	}
	if s2.Recovery().BytesDiscarded != 0 {
		t.Fatal("second recovery discarded bytes from a repaired file")
	}
	if wantEpoch >= 1 {
		sn, err := s2.SnapshotAt(1)
		if err != nil {
			t.Fatal(err)
		}
		if sn.Hash() != hash {
			t.Fatal("re-recovered snapshot diverged from first recovery")
		}
	}
}

// TestCrashTornWriteMatrix truncates the WAL at every byte boundary of the
// last record — and zero-fills the tail to model torn sectors — asserting
// recovery converges to the same state and the recovered epoch-1 snapshot
// hash equals the pre-crash checkpoint golden at every cut point.
func TestCrashTornWriteMatrix(t *testing.T) {
	raw, bounds, digest1, snapHash1 := buildCrashFixture(t)
	last := bounds[len(bounds)-2] // start of the last record
	for cut := last; cut < len(raw); cut++ {
		// Plain truncation: the write stopped mid-record.
		checkRecovery(t, raw[:cut], digest1, snapHash1)
		// Torn sector: the tail reached the disk as zeros.
		img := append(append([]byte(nil), raw[:cut]...), make([]byte, len(raw)-cut)...)
		checkRecovery(t, img, digest1, snapHash1)
	}
}

// TestCrashStrideSweep truncates the whole log on a byte stride (record
// interiors and boundaries alike), covering crashes inside earlier records
// and exactly on commit points — including mid-checkpoint-record, where the
// segment must vanish entirely rather than half-exist.
func TestCrashStrideSweep(t *testing.T) {
	raw, bounds, digest1, snapHash1 := buildCrashFixture(t)
	const stride = 41
	for cut := 0; cut <= len(raw); cut += stride {
		checkRecovery(t, raw[:cut], digest1, snapHash1)
	}
	// Every record boundary exactly (commit points), plus one byte either
	// side of the checkpoint record's frame.
	cpEnd := bounds[25] // 24 rows then the checkpoint: boundary after record 25
	extra := []int{cpEnd - 1, cpEnd, cpEnd + 1}
	for _, b := range bounds {
		extra = append(extra, b)
	}
	for _, cut := range extra {
		if cut < 0 || cut > len(raw) {
			continue
		}
		checkRecovery(t, raw[:cut], digest1, snapHash1)
	}
}

// TestCrashBitFlip flips a byte in the middle of the log: everything before
// the flipped record replays, everything from it on is the torn tail.
func TestCrashBitFlip(t *testing.T) {
	raw, bounds, digest1, snapHash1 := buildCrashFixture(t)
	img := append([]byte(nil), raw...)
	mid := bounds[28] + 3 // inside a post-checkpoint row record
	img[mid] ^= 0x40
	checkRecovery(t, img, digest1, snapHash1)
}
