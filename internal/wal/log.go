package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Log is the append-only write-ahead log file. Append is durable on return:
// the record has been written and fsynced before the call comes back. The
// durability cost amortizes across concurrent appenders by group commit —
// while one appender (the batch leader) is inside the write+fsync, later
// appenders enqueue into the pending buffer and wait; the next leader flushes
// the whole batch with a single write and a single fsync. The explicit fsync
// points are exactly the flush boundaries: nothing is acknowledged before its
// batch's sync returns, and nothing is synced twice.
//
// The log is safe for concurrent Append from any number of goroutines. A
// write or sync failure is sticky: it poisons the log and fails every
// in-flight and subsequent Append, because a WAL that cannot promise
// durability must stop acknowledging.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	pending []byte // encoded records not yet written
	seq     uint64 // last sequence number assigned to an enqueued record
	durable uint64 // highest sequence made durable
	flushing bool
	flushed  *sync.Cond
	size     int64 // durable file length in bytes
	err      error // sticky write/sync failure

	// syncFn is the fsync implementation — a field so tests can interpose a
	// gate that holds a batch leader inside the sync while followers pile up,
	// making the group-commit batching assertion deterministic.
	syncFn func(*os.File) error

	// Stats: appended records, physical fsyncs, and flushed batches. With
	// concurrency, Syncs < Appends is group commit working.
	Appends, Syncs, Batches atomic.Int64
}

// openLog opens (creating if needed) the log file at path for appending,
// trusting size as the clean durable length (recovery truncates the torn
// tail before handing the file over).
func openLog(path string, size int64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, size: size, syncFn: (*os.File).Sync}
	l.flushed = sync.NewCond(&l.mu)
	return l, nil
}

// enqueue appends rec's encoding to the pending buffer and returns its
// sequence number, without waiting for durability. Store.Append uses the
// enqueue/waitDurable split so WAL order and delta order are assigned under
// one lock while the fsync wait stays concurrent (that concurrency is what
// group commit batches).
func (l *Log) enqueue(rec Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = rec.AppendEncoded(l.pending)
	l.seq++
	l.Appends.Add(1)
	return l.seq
}

// waitDurable blocks until every record up to seq is on disk (or the log is
// poisoned). The first waiter to find the log idle becomes the batch leader:
// it takes the whole pending buffer, writes it at the durable tail, fsyncs,
// and wakes everyone.
func (l *Log) waitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.durable >= seq {
			return nil
		}
		if l.flushing {
			l.flushed.Wait()
			continue
		}
		// Become the leader for everything currently pending.
		batch := l.pending
		top := l.seq
		l.pending = nil
		l.flushing = true
		l.mu.Unlock()

		var err error
		if _, err = l.f.WriteAt(batch, l.size); err == nil {
			err = l.syncFn(l.f)
		}

		l.mu.Lock()
		l.flushing = false
		if err != nil {
			l.err = fmt.Errorf("wal: flush: %w", err)
		} else {
			l.size += int64(len(batch))
			l.durable = top
			l.Syncs.Add(1)
			l.Batches.Add(1)
		}
		l.flushed.Broadcast()
	}
}

// Append writes rec to the log and returns once it is durable (group-
// committed with any concurrent appends).
func (l *Log) Append(rec Record) error {
	return l.waitDurable(l.enqueue(rec))
}

// Size returns the durable length of the log in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// pendingLen reports the un-flushed buffer length (test hook for the
// group-commit batching assertion).
func (l *Log) pendingLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Close flushes any pending records and closes the file. Append is durable
// on return, so pending is only nonempty if every appender of the final
// batch was abandoned mid-wait; flushing here keeps Close conservative.
func (l *Log) Close() error {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	size := l.size
	err := l.err
	l.mu.Unlock()
	if err == nil && len(batch) > 0 {
		if _, err = l.f.WriteAt(batch, size); err == nil {
			err = l.syncFn(l.f)
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
