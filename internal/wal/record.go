// Package wal is the write path of the storage layer (DESIGN.md §18): an
// append-only, CRC-framed write-ahead log plus an MVCC ingest store on top of
// it. New patients (with their expression rows) land in the WAL and an
// in-memory delta; Checkpoint folds the delta into an immutable
// colpage-encoded segment persisted under the storage layer's page frames and
// advances the snapshot epoch. Every query executes against a pinned snapshot
// epoch, so answers stay a pure function of (snapshot, shard partition) while
// ingest runs — the serving tier re-keys its result cache by epoch instead of
// evicting on write.
//
// Recovery replays the log from the beginning: appends rebuild the delta,
// each checkpoint record re-folds the delta into a segment whose bytes must
// hash to the digest the checkpoint record committed — replay converges to
// byte-identical segments regardless of where a crash landed, and the
// convergence is checked mechanically on every open (see the torn-write crash
// matrix in crash_test.go).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/genbase/genbase/internal/datagen"
)

// Float values travel as raw IEEE bits so NaN payloads and signed zeros
// survive the log bit-exactly — the same discipline colpage's float codec
// follows.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// ErrCorrupt marks bytes that do not parse as a well-formed WAL record or
// segment: bad framing, a CRC mismatch, an unknown record type, or a payload
// whose declared and actual shapes disagree. Parsing arbitrary bytes returns
// this error — it never panics (FuzzWALRecord holds the line). During log
// scan, a corrupt record is the torn tail: everything before it is the clean
// prefix, everything from it on is discarded.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record types.
const (
	// RecRow is one ingested patient: metadata plus the patient's full
	// expression row.
	RecRow byte = 1
	// RecCheckpoint commits the delta accumulated since the previous
	// checkpoint as one immutable segment, carrying the digest the re-folded
	// segment bytes must reproduce on replay.
	RecCheckpoint byte = 2
)

// DigestSize is the size of a segment digest (SHA-256).
const DigestSize = 32

// maxBody bounds a record body so a corrupted length field cannot drive a
// huge allocation (64 MiB covers an expression row of 8M genes, ~130× the
// xlarge preset).
const maxBody = 1 << 26

// headerSize is the fixed frame: u32 body length + u32 CRC32-C of the body.
const headerSize = 8

// Row is one ingested patient: the metadata tuple plus the expression row
// (one value per gene, in gene order).
type Row struct {
	Patient datagen.Patient
	Expr    []float64
}

// Checkpoint is the payload of a RecCheckpoint record.
type Checkpoint struct {
	// Epoch is the snapshot epoch this checkpoint creates (1 for the first
	// checkpoint; epoch 0 is the preloaded base).
	Epoch uint64
	// Rows is the number of delta rows folded into the segment.
	Rows uint64
	// Digest is the SHA-256 of the folded segment's canonical bytes. Replay
	// re-folds and must reproduce it exactly.
	Digest [DigestSize]byte
}

// Record is one WAL entry: exactly one of Row or Checkpoint is meaningful,
// selected by Type.
type Record struct {
	Type       byte
	Row        Row
	Checkpoint Checkpoint
}

// castagnoli is the CRC polynomial every record frame uses (hardware-
// accelerated on amd64/arm64, and the conventional choice for storage CRCs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rowBodyLen is the encoded body size of a RecRow with n expression values:
// type byte + id/age/zip/disease (4×i32) + gender (1) + drug response (f64
// bits) + u32 count + n×f64 bits.
func rowBodyLen(n int) int { return 1 + 4*4 + 1 + 8 + 4 + 8*n }

// checkpointBodyLen is the encoded body size of a RecCheckpoint: type byte +
// epoch + rows + digest.
const checkpointBodyLen = 1 + 8 + 8 + DigestSize

// AppendEncoded appends r's wire form to dst and returns the extended slice:
//
//	[u32 body length][u32 crc32c(body)][body = type byte + payload]
//
// The encoding is canonical — ParseRecord of the result returns a record
// that re-encodes to the identical bytes (the round-trip fixed point
// FuzzWALRecord pins).
func (r Record) AppendEncoded(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame, patched below
	dst = append(dst, r.Type)
	switch r.Type {
	case RecRow:
		p := r.Row.Patient
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.ID))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Age))
		dst = append(dst, p.Gender)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Zipcode))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.DiseaseID))
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(p.DrugResponse))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Row.Expr)))
		for _, v := range r.Row.Expr {
			dst = binary.LittleEndian.AppendUint64(dst, floatBits(v))
		}
	case RecCheckpoint:
		dst = binary.LittleEndian.AppendUint64(dst, r.Checkpoint.Epoch)
		dst = binary.LittleEndian.AppendUint64(dst, r.Checkpoint.Rows)
		dst = append(dst, r.Checkpoint.Digest[:]...)
	default:
		// Unknown types have no payload; they encode as a bare type byte and
		// are rejected by ParseRecord (the encoder is only ever handed
		// records this package built, but the fuzz harness constructs
		// arbitrary ones).
	}
	body := dst[start+headerSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// EncodedLen returns the wire size of r.
func (r Record) EncodedLen() int {
	switch r.Type {
	case RecRow:
		return headerSize + rowBodyLen(len(r.Row.Expr))
	case RecCheckpoint:
		return headerSize + checkpointBodyLen
	default:
		return headerSize + 1
	}
}

// ParseRecord parses one record from the head of b, returning the record and
// the number of bytes consumed. Any malformed input — short frame, body
// length out of bounds, truncated body, CRC mismatch, unknown type, payload
// shape disagreeing with the declared length — returns a typed ErrCorrupt
// and never panics. Parsing is strict: a valid record's consumed bytes
// re-encode to the identical byte string.
func ParseRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame, need %d", ErrCorrupt, len(b), headerSize)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1 || n > maxBody {
		return Record{}, 0, fmt.Errorf("%w: body length %d outside [1,%d]", ErrCorrupt, n, maxBody)
	}
	if len(b) < headerSize+n {
		return Record{}, 0, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrCorrupt, len(b)-headerSize, n)
	}
	body := b[headerSize : headerSize+n]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc %08x != recorded %08x", ErrCorrupt, got, want)
	}
	rec := Record{Type: body[0]}
	payload := body[1:]
	switch rec.Type {
	case RecRow:
		if len(payload) < rowBodyLen(0)-1 {
			return Record{}, 0, fmt.Errorf("%w: row payload %d bytes, need %d", ErrCorrupt, len(payload), rowBodyLen(0)-1)
		}
		p := &rec.Row.Patient
		p.ID = int32(binary.LittleEndian.Uint32(payload))
		p.Age = int32(binary.LittleEndian.Uint32(payload[4:]))
		p.Gender = payload[8]
		p.Zipcode = int32(binary.LittleEndian.Uint32(payload[9:]))
		p.DiseaseID = int32(binary.LittleEndian.Uint32(payload[13:]))
		p.DrugResponse = floatFrom(binary.LittleEndian.Uint64(payload[17:]))
		exprN := int(binary.LittleEndian.Uint32(payload[25:]))
		if n != rowBodyLen(exprN) {
			return Record{}, 0, fmt.Errorf("%w: row declares %d expression values in a %d-byte body (want %d)",
				ErrCorrupt, exprN, n, rowBodyLen(exprN))
		}
		rec.Row.Expr = make([]float64, exprN)
		for i := range rec.Row.Expr {
			rec.Row.Expr[i] = floatFrom(binary.LittleEndian.Uint64(payload[29+8*i:]))
		}
	case RecCheckpoint:
		if n != checkpointBodyLen {
			return Record{}, 0, fmt.Errorf("%w: checkpoint body %d bytes, want %d", ErrCorrupt, n, checkpointBodyLen)
		}
		rec.Checkpoint.Epoch = binary.LittleEndian.Uint64(payload)
		rec.Checkpoint.Rows = binary.LittleEndian.Uint64(payload[8:])
		copy(rec.Checkpoint.Digest[:], payload[16:])
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.Type)
	}
	return rec, headerSize + n, nil
}
