package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/storage"
)

// Store is the MVCC ingest store over a preloaded base dataset: appended rows
// go to the WAL (group-committed) and an in-memory delta; Checkpoint folds
// the delta into an immutable colpage-encoded segment — persisted through the
// storage layer's page frames — and advances the snapshot epoch. SnapshotAt
// materializes the dataset as of any retained epoch: epoch 0 is the base,
// epoch k is the base plus the first k checkpointed segments, a pure function
// of (base, WAL prefix) that recovery reproduces byte-identically.
//
// Concurrency: Append is safe from any number of goroutines (WAL order and
// delta order are assigned under one lock; durability waits run concurrently
// so group commit batches them). Checkpoint excludes appends and snapshots
// for the fold itself. SnapshotAt runs concurrently with appends — the delta
// is invisible to snapshots, so an in-flight query pinned to epoch E never
// observes ingest (DESIGN.md §18).
type Store struct {
	dir  string
	base *datagen.Dataset
	log  *Log
	heap *storage.HeapFile // checkpointed segment bytes, chunked into page frames

	mu    sync.RWMutex
	delta []Row
	segs  []*Segment

	recovery RecoveryTiming
	// Pool-stat baseline at the end of recovery: ServePoolStats subtracts it
	// so recovery's page traffic never pollutes serve-path accounting.
	baseHits, baseMisses int64
}

// Segment is one checkpointed, immutable fold of delta rows.
type Segment struct {
	// Epoch this segment's checkpoint created (segments are 1-indexed by
	// epoch; epoch 0 is the base dataset).
	Epoch uint64
	// Blob is the canonical colpage-encoded segment (see foldSegment).
	Blob []byte
	// Digest is sha256(Blob) — the value the checkpoint record committed.
	Digest [DigestSize]byte

	// rids locate the blob's chunks in the segment heap.
	rids []storage.RID
}

// Rows decodes the segment's row count from its blob header.
func (s *Segment) Rows() int {
	return int(binary.LittleEndian.Uint64(s.Blob[12:]))
}

// segChunk is the heap-record size segment blobs are chunked into: small
// enough that several chunks share an 8 KiB frame, large enough that a
// segment is a handful of records.
const segChunk = 4000

const (
	logFile  = "wal.log"
	heapFile = "segments.heap"
	// heapFrames sizes the segment heap's buffer pool: a few frames suffice
	// because snapshot materialization scans segments in RID order.
	heapFrames = 16
)

// Open creates or recovers a store at dir over base. An existing WAL is
// replayed: row records rebuild the delta, each checkpoint record re-folds
// the delta into a segment and verifies the fold's digest against the one the
// record committed — a mismatch means replay did not converge and is
// reported, never ignored. The torn tail past the last clean record is
// truncated. The segment heap is rebuilt from the replayed segments (it is a
// cache of WAL state, so a crash between WAL commit and heap write costs
// nothing).
//
// Recovery accounting lands in Recovery(), not in any engine StopWatch or
// serve-path pool counter.
func Open(dir string, base *datagen.Dataset) (*Store, error) {
	if base == nil {
		return nil, fmt.Errorf("wal: nil base dataset")
	}
	s := &Store{dir: dir, base: base}
	start := time.Now()
	logPath := filepath.Join(dir, logFile)
	clean, rt, err := recoverFile(logPath, s.replay)
	if err != nil {
		return nil, err
	}
	heap, err := storage.CreateHeapFile(filepath.Join(dir, heapFile), heapFrames)
	if err != nil {
		return nil, err
	}
	s.heap = heap
	for _, seg := range s.segs {
		if err := s.writeSegment(seg); err != nil {
			heap.Close()
			return nil, err
		}
	}
	if err := heap.Pool().FlushAll(); err != nil {
		heap.Close()
		return nil, err
	}
	rt.Replay = time.Since(start)
	rt.SegmentPoolHits = heap.Pool().Hits.Load()
	rt.SegmentPoolMisses = heap.Pool().Misses.Load()
	s.recovery = rt
	s.baseHits, s.baseMisses = rt.SegmentPoolHits, rt.SegmentPoolMisses
	if s.log, err = openLog(logPath, clean); err != nil {
		heap.Close()
		return nil, err
	}
	return s, nil
}

// replay applies one clean WAL record during recovery.
func (s *Store) replay(rec Record) error {
	switch rec.Type {
	case RecRow:
		if len(rec.Row.Expr) != s.base.Dims.Genes {
			return fmt.Errorf("%w: row with %d expression values, dataset has %d genes",
				ErrCorrupt, len(rec.Row.Expr), s.base.Dims.Genes)
		}
		s.delta = append(s.delta, rec.Row)
	case RecCheckpoint:
		cp := rec.Checkpoint
		if cp.Epoch != uint64(len(s.segs)+1) {
			return fmt.Errorf("%w: checkpoint epoch %d after %d segments", ErrCorrupt, cp.Epoch, len(s.segs))
		}
		if cp.Rows != uint64(len(s.delta)) {
			return fmt.Errorf("%w: checkpoint folds %d rows, delta has %d", ErrCorrupt, cp.Rows, len(s.delta))
		}
		seg := foldSegment(cp.Epoch, s.delta, s.base.Dims.Genes)
		if seg.Digest != cp.Digest {
			return fmt.Errorf("%w: replayed segment %d digest %x diverges from committed %x",
				ErrCorrupt, cp.Epoch, seg.Digest, cp.Digest)
		}
		s.segs = append(s.segs, seg)
		s.delta = s.delta[:0:0]
	}
	return nil
}

// Close syncs and closes the WAL and the segment heap.
func (s *Store) Close() error {
	err := s.log.Close()
	if herr := s.heap.Close(); err == nil {
		err = herr
	}
	return err
}

// Append ingests one row: durable in the WAL (group-committed with
// concurrent appends) and visible to the next Checkpoint, invisible to every
// snapshot until then.
func (s *Store) Append(row Row) error {
	if len(row.Expr) != s.base.Dims.Genes {
		return fmt.Errorf("wal: row with %d expression values, dataset has %d genes",
			len(row.Expr), s.base.Dims.Genes)
	}
	// WAL order and delta order are assigned under one lock so replay folds
	// rows in exactly the order the live store did — the digest check in
	// replay depends on it. The durability wait happens outside the lock,
	// which is what lets group commit batch concurrent appenders.
	s.mu.Lock()
	seq := s.log.enqueue(Record{Type: RecRow, Row: row})
	s.delta = append(s.delta, row)
	s.mu.Unlock()
	return s.log.waitDurable(seq)
}

// Checkpoint folds the delta into a new immutable segment, commits it with a
// digest-carrying checkpoint record (an explicit fsync point), and returns
// the new epoch. With an empty delta it is a no-op returning the current
// epoch.
func (s *Store) Checkpoint() (uint64, error) {
	s.mu.Lock()
	if len(s.delta) == 0 {
		epoch := uint64(len(s.segs))
		s.mu.Unlock()
		return epoch, nil
	}
	seg := foldSegment(uint64(len(s.segs)+1), s.delta, s.base.Dims.Genes)
	seq := s.log.enqueue(Record{Type: RecCheckpoint, Checkpoint: Checkpoint{
		Epoch:  seg.Epoch,
		Rows:   uint64(seg.Rows()),
		Digest: seg.Digest,
	}})
	if err := s.writeSegment(seg); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.segs = append(s.segs, seg)
	s.delta = s.delta[:0:0]
	s.mu.Unlock()
	if err := s.log.waitDurable(seq); err != nil {
		return 0, err
	}
	return seg.Epoch, s.heap.Pool().FlushAll()
}

// writeSegment chunks the blob into the segment heap. Caller holds mu (or is
// single-threaded recovery).
func (s *Store) writeSegment(seg *Segment) error {
	seg.rids = seg.rids[:0]
	for off := 0; off < len(seg.Blob); off += segChunk {
		end := min(off+segChunk, len(seg.Blob))
		rid, err := s.heap.AppendLocated(seg.Blob[off:end])
		if err != nil {
			return err
		}
		seg.rids = append(seg.rids, rid)
	}
	return nil
}

// readSegment reassembles a segment's blob from the heap through the buffer
// pool (the serve-path read; its page traffic lands in ServePoolStats).
func (s *Store) readSegment(seg *Segment) ([]byte, error) {
	blob := make([]byte, 0, len(seg.Blob))
	var buf []byte
	for _, rid := range seg.rids {
		var err error
		if buf, err = s.heap.FetchRecordInto(rid, buf); err != nil {
			return nil, err
		}
		blob = append(blob, buf...)
	}
	return blob, nil
}

// Epoch returns the current snapshot epoch (the number of checkpoints).
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.segs))
}

// DeltaRows returns the number of appended rows not yet checkpointed.
func (s *Store) DeltaRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.delta)
}

// SegmentDigest returns the committed digest of the segment that created
// epoch (1-indexed).
func (s *Store) SegmentDigest(epoch uint64) ([DigestSize]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if epoch < 1 || epoch > uint64(len(s.segs)) {
		return [DigestSize]byte{}, fmt.Errorf("wal: no segment for epoch %d (current epoch %d)", epoch, len(s.segs))
	}
	return s.segs[epoch-1].Digest, nil
}

// Recovery returns the replay accounting of the Open that built this store —
// a side-effect-free read, identical on every call.
func (s *Store) Recovery() RecoveryTiming { return s.recovery }

// PoolStats is buffer-pool traffic attributable to one accounting domain.
type PoolStats struct{ Hits, Misses int64 }

// ServePoolStats returns the segment heap's page traffic excluding recovery
// replay: the serve path's snapshot reads start from zero, so recovery can
// never double-count into serving metrics.
func (s *Store) ServePoolStats() PoolStats {
	return PoolStats{
		Hits:   s.heap.Pool().Hits.Load() - s.baseHits,
		Misses: s.heap.Pool().Misses.Load() - s.baseMisses,
	}
}

// Snapshot is a materialized dataset pinned to an epoch. The Dataset is
// freshly allocated where it differs from the base (expression matrix,
// patients); gene metadata and GO membership are shared with the base and
// remain read-only under the engine contract.
type Snapshot struct {
	Epoch   uint64
	Dataset *datagen.Dataset
}

// Snapshot materializes the current epoch.
func (s *Store) Snapshot() (*Snapshot, error) { return s.SnapshotAt(s.Epoch()) }

// SnapshotAt materializes the dataset as of epoch: the base plus the rows of
// the first `epoch` segments, decoded from the segment heap. It is a pure
// function of (base, epoch): two materializations — live or recovered —
// produce bit-identical datasets (Snapshot.Hash pins it).
func (s *Store) SnapshotAt(epoch uint64) (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if epoch > uint64(len(s.segs)) {
		return nil, fmt.Errorf("wal: snapshot epoch %d beyond current epoch %d", epoch, len(s.segs))
	}
	if epoch == 0 {
		return &Snapshot{Epoch: 0, Dataset: s.base}, nil
	}
	var rows []Row
	for _, seg := range s.segs[:epoch] {
		blob, err := s.readSegment(seg)
		if err != nil {
			return nil, err
		}
		segRows, err := parseSegment(blob, s.base.Dims.Genes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, segRows...)
	}
	base := s.base
	d := &datagen.Dataset{
		Size: base.Size,
		Dims: datagen.Dims{
			Patients: base.Dims.Patients + len(rows),
			Genes:    base.Dims.Genes,
			GOTerms:  base.Dims.GOTerms,
		},
		Seed:           base.Seed,
		Expression:     linalg.NewMatrix(base.Dims.Patients+len(rows), base.Dims.Genes),
		Patients:       make([]datagen.Patient, 0, base.Dims.Patients+len(rows)),
		Genes:          base.Genes,
		GO:             base.GO,
		CausalGenes:    base.CausalGenes,
		EnrichedTerms:  base.EnrichedTerms,
		PlantedRowSets: base.PlantedRowSets,
		PlantedColSets: base.PlantedColSets,
	}
	for i := 0; i < base.Dims.Patients; i++ {
		copy(d.Expression.Row(i), base.Expression.Row(i))
	}
	d.Patients = append(d.Patients, base.Patients...)
	for i, row := range rows {
		copy(d.Expression.Row(base.Dims.Patients+i), row.Expr)
		d.Patients = append(d.Patients, row.Patient)
	}
	return &Snapshot{Epoch: epoch, Dataset: d}, nil
}

// Hash is the canonical SHA-256 of the snapshot's mutable state — dims,
// patient tuples, and the expression matrix as raw IEEE bits — the golden the
// crash matrix compares recovered snapshots against.
func (sn *Snapshot) Hash() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	d := sn.Dataset
	u64(sn.Epoch)
	u64(uint64(d.Dims.Patients))
	u64(uint64(d.Dims.Genes))
	u64(uint64(d.Dims.GOTerms))
	for _, p := range d.Patients {
		u64(uint64(uint32(p.ID))<<32 | uint64(uint32(p.Age)))
		u64(uint64(p.Gender)<<32 | uint64(uint32(p.DiseaseID)))
		u64(uint64(uint32(p.Zipcode)))
		u64(floatBits(p.DrugResponse))
	}
	for i := 0; i < d.Expression.Rows; i++ {
		for _, v := range d.Expression.Row(i) {
			u64(floatBits(v))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Segment blob layout (canonical — the digest is over these bytes):
//
//	magic "GBS1"
//	u64 epoch, u64 rows, u64 genes
//	6 metadata pages, each u32-length-prefixed:
//	  IntPage id, IntPage age, IntPage gender, IntPage zipcode,
//	  IntPage disease, FloatPage drug response
//	genes gene-column pages, each u32-length-prefixed:
//	  FloatPage of the column's values across the segment's rows
//
// Column pages reuse the colpage encodings (dict/RLE/packed chosen per
// column by serialized size), so a checkpointed segment is the same storage
// currency the read path's compressed scans use (DESIGN.md §15).
var segMagic = [4]byte{'G', 'B', 'S', '1'}

// foldSegment encodes rows into the canonical segment blob and digest. The
// fold is deterministic: same rows in the same order, same bytes.
func foldSegment(epoch uint64, rows []Row, genes int) *Segment {
	blob := make([]byte, 0, 1024+len(rows)*(64+8*genes)/4)
	blob = append(blob, segMagic[:]...)
	blob = binary.LittleEndian.AppendUint64(blob, epoch)
	blob = binary.LittleEndian.AppendUint64(blob, uint64(len(rows)))
	blob = binary.LittleEndian.AppendUint64(blob, uint64(genes))

	ints := make([]int64, len(rows))
	intCol := func(get func(datagen.Patient) int64) {
		for i, r := range rows {
			ints[i] = get(r.Patient)
		}
		page := colpage.BuildInt(ints).AppendEncoded(nil)
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(page)))
		blob = append(blob, page...)
	}
	intCol(func(p datagen.Patient) int64 { return int64(p.ID) })
	intCol(func(p datagen.Patient) int64 { return int64(p.Age) })
	intCol(func(p datagen.Patient) int64 { return int64(p.Gender) })
	intCol(func(p datagen.Patient) int64 { return int64(p.Zipcode) })
	intCol(func(p datagen.Patient) int64 { return int64(p.DiseaseID) })

	floats := make([]float64, len(rows))
	floatCol := func(get func(Row, int) float64, arg int) {
		for i, r := range rows {
			floats[i] = get(r, arg)
		}
		page := colpage.BuildFloat(floats).AppendEncoded(nil)
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(page)))
		blob = append(blob, page...)
	}
	floatCol(func(r Row, _ int) float64 { return r.Patient.DrugResponse }, 0)
	for g := 0; g < genes; g++ {
		floatCol(func(r Row, g int) float64 { return r.Expr[g] }, g)
	}
	return &Segment{Epoch: epoch, Blob: blob, Digest: sha256.Sum256(blob)}
}

// parseSegment decodes a segment blob back into rows, validating every frame
// (typed ErrCorrupt, never a panic — the blob normally comes from our own
// fold, but the parser does not assume it).
func parseSegment(blob []byte, wantGenes int) ([]Row, error) {
	if len(blob) < 4+24 {
		return nil, fmt.Errorf("%w: segment header %d bytes", ErrCorrupt, len(blob))
	}
	if [4]byte(blob[:4]) != segMagic {
		return nil, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, blob[:4])
	}
	n := int(binary.LittleEndian.Uint64(blob[12:]))
	genes := int(binary.LittleEndian.Uint64(blob[20:]))
	if genes != wantGenes {
		return nil, fmt.Errorf("%w: segment has %d genes, dataset has %d", ErrCorrupt, genes, wantGenes)
	}
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: segment row count %d", ErrCorrupt, n)
	}
	rest := blob[28:]
	nextPage := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated page frame", ErrCorrupt)
		}
		l := int(binary.LittleEndian.Uint32(rest))
		if l < 0 || 4+l > len(rest) {
			return nil, fmt.Errorf("%w: page length %d exceeds %d remaining", ErrCorrupt, l, len(rest)-4)
		}
		page := rest[4 : 4+l]
		rest = rest[4+l:]
		return page, nil
	}
	intCol := func() ([]int64, error) {
		page, err := nextPage()
		if err != nil {
			return nil, err
		}
		p, err := colpage.ParseInt(page)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if p.Len() != n {
			return nil, fmt.Errorf("%w: int column of %d values in a %d-row segment", ErrCorrupt, p.Len(), n)
		}
		return p.AppendTo(nil), nil
	}
	floatCol := func() ([]float64, error) {
		page, err := nextPage()
		if err != nil {
			return nil, err
		}
		p, err := colpage.ParseFloat(page)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if p.Len() != n {
			return nil, fmt.Errorf("%w: float column of %d values in a %d-row segment", ErrCorrupt, p.Len(), n)
		}
		return p.AppendTo(nil), nil
	}

	ids, err := intCol()
	if err != nil {
		return nil, err
	}
	ages, err := intCol()
	if err != nil {
		return nil, err
	}
	genders, err := intCol()
	if err != nil {
		return nil, err
	}
	zips, err := intCol()
	if err != nil {
		return nil, err
	}
	diseases, err := intCol()
	if err != nil {
		return nil, err
	}
	drugs, err := floatCol()
	if err != nil {
		return nil, err
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i].Patient = datagen.Patient{
			ID:           int32(ids[i]),
			Age:          int32(ages[i]),
			Gender:       byte(genders[i]),
			Zipcode:      int32(zips[i]),
			DiseaseID:    int32(diseases[i]),
			DrugResponse: drugs[i],
		}
		rows[i].Expr = make([]float64, genes)
	}
	for g := 0; g < genes; g++ {
		col, err := floatCol()
		if err != nil {
			return nil, err
		}
		for i := range rows {
			rows[i].Expr[g] = col[i]
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing segment bytes", ErrCorrupt, len(rest))
	}
	return rows, nil
}
