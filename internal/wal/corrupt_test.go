package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRecords materializes a WAL containing exactly recs, bypassing Store.
func writeRecords(t *testing.T, recs ...Record) string {
	t.Helper()
	dir := t.TempDir()
	var buf []byte
	for _, r := range recs {
		buf = r.AppendEncoded(buf)
	}
	if err := os.WriteFile(filepath.Join(dir, logFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWALOpenRejectsSemanticCorruption: records that parse cleanly but lie
// about store state (wrong gene count, impossible checkpoint shape, a digest
// replay cannot reproduce) must fail Open with ErrCorrupt — recovery refuses
// to converge to a state the log does not actually describe.
func TestWALOpenRejectsSemanticCorruption(t *testing.T) {
	base := testBase(t)
	goodRow := NewRowGen(base, 1).Next()
	badDigestCP := Record{Type: RecCheckpoint, Checkpoint: Checkpoint{Epoch: 1, Rows: 1, Digest: [DigestSize]byte{0xbe, 0xef}}}
	cases := map[string][]Record{
		"row wrong gene count": {{Type: RecRow, Row: Row{Expr: make([]float64, base.Dims.Genes+2)}}},
		"checkpoint epoch skip": {
			{Type: RecRow, Row: goodRow},
			{Type: RecCheckpoint, Checkpoint: Checkpoint{Epoch: 5, Rows: 1}},
		},
		"checkpoint rows mismatch": {
			{Type: RecRow, Row: goodRow},
			{Type: RecCheckpoint, Checkpoint: Checkpoint{Epoch: 1, Rows: 7}},
		},
		"checkpoint digest mismatch": {
			{Type: RecRow, Row: goodRow},
			badDigestCP,
		},
	}
	for name, recs := range cases {
		dir := writeRecords(t, recs...)
		if _, err := Open(dir, base); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Open returned %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Error("Open with nil base succeeded")
	}
	// A WAL path that is a directory: recovery propagates the read error.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, logFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, base); err == nil {
		t.Error("Open over an unreadable log succeeded")
	}
}

func TestWALOpenLogBadPath(t *testing.T) {
	if _, err := openLog(filepath.Join(t.TempDir(), "missing", "wal.log"), 0); err == nil {
		t.Fatal("openLog into a missing directory succeeded")
	}
}

func TestWALEncodedLenUnknownType(t *testing.T) {
	r := Record{Type: 77}
	if got := r.EncodedLen(); got != len(r.AppendEncoded(nil)) {
		t.Fatalf("EncodedLen %d, encoded %d", got, len(r.AppendEncoded(nil)))
	}
}

func TestWALScanFnError(t *testing.T) {
	buf := sampleRow(1).AppendEncoded(nil)
	buf = sampleRow(2).AppendEncoded(buf)
	boom := errors.New("stop here")
	calls := 0
	off, err := Scan(buf, func(Record) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("scan: err %v after %d calls", err, calls)
	}
	if want := sampleRow(1).EncodedLen(); off != want {
		t.Fatalf("aborted scan reported offset %d, want %d", off, want)
	}
}

// TestWALParseSegmentCorruption drives the segment parser through every
// reject branch: each mutation of a valid blob must come back ErrCorrupt.
func TestWALParseSegmentCorruption(t *testing.T) {
	base := testBase(t)
	gen := NewRowGen(base, 3)
	rows := []Row{gen.Next(), gen.Next(), gen.Next()}
	seg := foldSegment(1, rows, base.Dims.Genes)
	blob := seg.Blob

	if got, err := parseSegment(blob, base.Dims.Genes); err != nil || len(got) != 3 {
		t.Fatalf("clean blob: %d rows, err %v", len(got), err)
	}

	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), blob...))
	}
	cases := map[string][]byte{
		"short header": blob[:10],
		"bad magic":    mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"row count over cap": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 1<<30)
			return b
		}),
		"truncated page frame": blob[:len(blob)-1],
		"page length overflow": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[28:], 1<<30)
			return b
		}),
		"trailing bytes":  append(append([]byte(nil), blob...), 0),
		"garbage page": mut(func(b []byte) []byte {
			b[32] ^= 0xff // inside the first page's colpage header
			return b
		}),
	}
	for name, b := range cases {
		if _, err := parseSegment(b, base.Dims.Genes); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := parseSegment(blob, base.Dims.Genes+1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("gene mismatch: got %v, want ErrCorrupt", err)
	}
	// A column page that parses but holds the wrong number of values.
	short := foldSegment(1, rows[:2], base.Dims.Genes)
	spliced := append([]byte(nil), blob[:28]...)
	spliced = append(spliced, short.Blob[28:]...)
	if _, err := parseSegment(spliced, base.Dims.Genes); !errors.Is(err, ErrCorrupt) {
		t.Errorf("column length mismatch: got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(ErrCorrupt.Error(), "corrupt") {
		t.Fatal("ErrCorrupt lost its message")
	}
}
