package wal

import (
	"fmt"
	"os"
	"time"
)

// RecoveryTiming is the accounting of one recovery replay, kept deliberately
// separate from the serve path's engine.Timing phases and buffer-pool stats:
// replay work happens before serving starts (or beside it, on a fresh store)
// and must never fold into a query's data-management time or the segment
// pool's serve-path hit/miss counters — the double-count trap the StopWatch
// rework in DESIGN.md §11 closed for queries, closed here for recovery. It is
// a side-effect-free read: Store.Recovery returns a copy, reading it twice
// returns identical values.
type RecoveryTiming struct {
	// Replay is the wall-clock time spent scanning the log, rebuilding the
	// delta, and re-folding + verifying every checkpointed segment.
	Replay time.Duration
	// Records is the number of clean records replayed.
	Records int
	// Checkpoints is the number of checkpoint records among them (= the
	// recovered epoch).
	Checkpoints int
	// BytesReplayed is the clean prefix length.
	BytesReplayed int64
	// BytesDiscarded is the torn tail repaired away: bytes past the last
	// clean record (a partially written record, or sector-zeroed garbage),
	// truncated from the file on open.
	BytesDiscarded int64
	// SegmentPoolMisses/SegmentPoolHits are the segment heap's buffer-pool
	// traffic charged to recovery (rewriting the folded segments through the
	// page frames). Store.ServePoolStats subtracts them, so serve-path page
	// accounting starts at zero.
	SegmentPoolMisses, SegmentPoolHits int64
}

// Scan parses records from the head of b until the bytes stop being a
// well-formed record, calling fn for each clean record in order. It returns
// the clean prefix length: the first corrupt or truncated record is the torn
// write marking the end of the log, and everything from it on is discarded —
// scan itself never returns ErrCorrupt. A non-nil error from fn aborts the
// scan and is returned as-is (with the offset of the record that produced
// it).
//
// Treating any invalid suffix as end-of-log is what makes recovery converge
// at every truncation point: validity of a prefix is decided by the prefix
// alone, so two replays that see the same clean bytes rebuild the same
// state, wherever the crash landed (crash_test.go walks every byte
// boundary).
func Scan(b []byte, fn func(Record) error) (int, error) {
	off := 0
	for off < len(b) {
		rec, n, err := ParseRecord(b[off:])
		if err != nil {
			break // torn tail: clean prefix ends here
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, fmt.Errorf("wal: replay at offset %d: %w", off, err)
			}
		}
		off += n
	}
	return off, nil
}

// recoverFile reads the log at path, replays its clean prefix through fn,
// and repairs the file by truncating the torn tail, so the reopened log
// appends after the last clean record instead of interleaving with garbage.
// It returns the clean length and replay statistics (Replay time and the
// pool counters are filled in by the caller, which owns the clocks and the
// heap).
func recoverFile(path string, fn func(Record) error) (int64, RecoveryTiming, error) {
	var rt RecoveryTiming
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, rt, nil // fresh store: no log yet
		}
		return 0, rt, err
	}
	clean, err := Scan(raw, func(rec Record) error {
		rt.Records++
		if rec.Type == RecCheckpoint {
			rt.Checkpoints++
		}
		return fn(rec)
	})
	if err != nil {
		return 0, rt, err
	}
	rt.BytesReplayed = int64(clean)
	rt.BytesDiscarded = int64(len(raw) - clean)
	if rt.BytesDiscarded > 0 {
		if err := os.Truncate(path, int64(clean)); err != nil {
			return 0, rt, fmt.Errorf("wal: repair torn tail: %w", err)
		}
	}
	return int64(clean), rt, nil
}
