package wal

import (
	"github.com/genbase/genbase/internal/datagen"
)

// RowGen generates a deterministic stream of synthetic ingest rows shaped
// like the base dataset's patients: IDs continue from the base population,
// metadata follows the same marginals as datagen, and expression rows are
// drawn from the same SplitMix64 discipline. Two RowGens with the same (base
// dims, seed) emit identical streams — the ingest benchmark and the crash
// matrix both lean on that to reproduce WAL contents exactly.
type RowGen struct {
	genes  int
	nextID int32
	meta   *datagen.RNG
	expr   *datagen.RNG
}

// NewRowGen builds a generator continuing after base with the given seed.
func NewRowGen(base *datagen.Dataset, seed uint64) *RowGen {
	maxID := int32(0)
	for _, p := range base.Patients {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	root := datagen.NewRNG(seed)
	return &RowGen{
		genes:  base.Dims.Genes,
		nextID: maxID + 1,
		meta:   root.DeriveStream(1),
		expr:   root.DeriveStream(2),
	}
}

// Next emits the next row in the stream.
func (g *RowGen) Next() Row {
	p := datagen.Patient{
		ID:        g.nextID,
		Age:       int32(18 + g.meta.Intn(70)),
		Gender:    byte(g.meta.Intn(2)),
		Zipcode:   int32(10000 + g.meta.Intn(90000)),
		DiseaseID: int32(g.meta.Intn(50)),
	}
	g.nextID++
	expr := make([]float64, g.genes)
	for j := range expr {
		expr[j] = 5 + g.expr.NormFloat64()
	}
	resp := 2.0
	for j := 0; j < g.genes; j += 97 {
		resp += 0.01 * expr[j]
	}
	p.DrugResponse = resp + 0.5*g.meta.NormFloat64()
	return Row{Patient: p, Expr: expr}
}
