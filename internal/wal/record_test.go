package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
)

func crcOf(body []byte) uint32 { return crc32.Checksum(body, castagnoli) }

func sampleRow(n int) Record {
	expr := make([]float64, n)
	for i := range expr {
		expr[i] = float64(i) * 1.5
	}
	if n > 2 {
		expr[1] = math.Copysign(0, -1) // -0.0 must survive bit-exactly
		expr[2] = math.NaN()
	}
	return Record{Type: RecRow, Row: Row{
		Patient: datagen.Patient{ID: 42, Age: 63, Gender: 1, Zipcode: 12345, DiseaseID: 7, DrugResponse: 3.25},
		Expr:    expr,
	}}
}

func sampleCheckpoint() Record {
	cp := Checkpoint{Epoch: 3, Rows: 17}
	for i := range cp.Digest {
		cp.Digest[i] = byte(i * 7)
	}
	return Record{Type: RecCheckpoint, Checkpoint: cp}
}

func TestWALRecordRoundTrip(t *testing.T) {
	for _, rec := range []Record{sampleRow(0), sampleRow(1), sampleRow(8), sampleCheckpoint()} {
		enc := rec.AppendEncoded(nil)
		if len(enc) != rec.EncodedLen() {
			t.Fatalf("type %d: encoded %d bytes, EncodedLen says %d", rec.Type, len(enc), rec.EncodedLen())
		}
		got, n, err := ParseRecord(enc)
		if err != nil {
			t.Fatalf("type %d: parse: %v", rec.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("type %d: consumed %d of %d bytes", rec.Type, n, len(enc))
		}
		// Fixed point: the parsed record re-encodes to identical bytes (value
		// comparison would miss NaN payloads; bytes do not).
		if re := got.AppendEncoded(nil); !bytes.Equal(re, enc) {
			t.Fatalf("type %d: re-encode diverged\n enc %x\n re  %x", rec.Type, enc, re)
		}
	}
}

func TestWALRecordParseConsumesPrefix(t *testing.T) {
	var enc []byte
	recs := []Record{sampleRow(3), sampleCheckpoint(), sampleRow(0)}
	for _, r := range recs {
		enc = r.AppendEncoded(enc)
	}
	enc = append(enc, 0xde, 0xad) // trailing garbage after the clean records
	off := 0
	for i := range recs {
		_, n, err := ParseRecord(enc[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
	}
	if _, _, err := ParseRecord(enc[off:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
}

func TestWALRecordCorruption(t *testing.T) {
	clean := sampleRow(4).AppendEncoded(nil)
	cases := map[string]func([]byte) []byte{
		"empty":          func(b []byte) []byte { return nil },
		"short frame":    func(b []byte) []byte { return b[:headerSize-1] },
		"truncated body": func(b []byte) []byte { return b[:len(b)-1] },
		"zero length": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, 0)
			return b
		},
		"huge length": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, maxBody+1)
			return b
		},
		"crc flip":  func(b []byte) []byte { b[4] ^= 0xff; return b },
		"body flip": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"unknown type": func(b []byte) []byte {
			// Re-frame a body with a bogus type so the CRC is valid.
			return Record{Type: 99}.AppendEncoded(nil)
		},
		"expr count lies": func(b []byte) []byte {
			// Declared expression count disagrees with the body length; CRC
			// is recomputed so only the shape check can reject it.
			binary.LittleEndian.PutUint32(b[headerSize+26:], 1000)
			binary.LittleEndian.PutUint32(b[4:], crcOf(b[headerSize:]))
			return b
		},
		"checkpoint short": func(b []byte) []byte {
			cp := sampleCheckpoint().AppendEncoded(nil)
			body := cp[headerSize : len(cp)-1]
			out := make([]byte, 0, len(cp))
			out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
			out = binary.LittleEndian.AppendUint32(out, crcOf(body))
			return append(out, body...)
		},
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), clean...))
		if _, _, err := ParseRecord(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}
