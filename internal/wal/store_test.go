package wal

import (
	"math"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
)

// testBase generates a small deterministic base dataset (25×25×10).
func testBase(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Scale: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func openTestStore(t *testing.T, dir string, base *datagen.Dataset) *Store {
	t.Helper()
	s, err := Open(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendN(t *testing.T, s *Store, gen *RowGen, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALStoreAppendCheckpointSnapshot(t *testing.T) {
	base := testBase(t)
	s := openTestStore(t, t.TempDir(), base)
	if s.Epoch() != 0 {
		t.Fatalf("fresh store at epoch %d", s.Epoch())
	}
	sn0, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn0.Dataset != base {
		t.Fatal("epoch-0 snapshot is not the base dataset")
	}
	hash0 := sn0.Hash()

	gen := NewRowGen(base, 99)
	rows := make([]Row, 0, 12)
	for i := 0; i < 12; i++ {
		rows = append(rows, gen.Next())
	}
	for _, r := range rows {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.DeltaRows() != 12 {
		t.Fatalf("delta %d rows, want 12", s.DeltaRows())
	}
	// Delta is invisible to snapshots until checkpoint.
	if sn, _ := s.Snapshot(); sn.Epoch != 0 || sn.Hash() != hash0 {
		t.Fatal("delta leaked into the epoch-0 snapshot")
	}

	epoch, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || s.Epoch() != 1 || s.DeltaRows() != 0 {
		t.Fatalf("after checkpoint: epoch %d/%d, delta %d", epoch, s.Epoch(), s.DeltaRows())
	}
	// Empty-delta checkpoint is a no-op.
	if e, err := s.Checkpoint(); err != nil || e != 1 {
		t.Fatalf("no-op checkpoint: epoch %d, err %v", e, err)
	}

	sn1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d := sn1.Dataset
	if d.Dims.Patients != base.Dims.Patients+12 {
		t.Fatalf("epoch-1 snapshot has %d patients, want %d", d.Dims.Patients, base.Dims.Patients+12)
	}
	for i, r := range rows {
		at := base.Dims.Patients + i
		if d.Patients[at] != r.Patient {
			t.Fatalf("row %d: patient %+v, want %+v", i, d.Patients[at], r.Patient)
		}
		for j, v := range r.Expr {
			if math.Float64bits(d.Expression.Row(at)[j]) != math.Float64bits(v) {
				t.Fatalf("row %d gene %d: %v != %v", i, j, d.Expression.Row(at)[j], v)
			}
		}
	}
	// Base rows are untouched.
	for j, v := range base.Expression.Row(3) {
		if d.Expression.Row(3)[j] != v {
			t.Fatalf("base row mutated at gene %d", j)
		}
	}

	// A second batch advances to epoch 2 while epoch 1 stays materializable
	// and stable (serve-old-epoch-until-checkpoint depends on this).
	hash1 := sn1.Hash()
	appendN(t, s, gen, 5)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	again, err := s.SnapshotAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash() != hash1 {
		t.Fatal("epoch-1 snapshot changed after epoch 2 was checkpointed")
	}
	if _, err := s.SnapshotAt(3); err == nil {
		t.Fatal("snapshot beyond current epoch succeeded")
	}
}

func TestWALStoreRejectsMismatchedRow(t *testing.T) {
	base := testBase(t)
	s := openTestStore(t, t.TempDir(), base)
	if err := s.Append(Row{Expr: make([]float64, base.Dims.Genes+1)}); err == nil {
		t.Fatal("append with wrong gene count succeeded")
	}
}

func TestWALStoreRecoveryMatchesLive(t *testing.T) {
	base := testBase(t)
	dir := t.TempDir()
	s := openTestStore(t, dir, base)
	gen := NewRowGen(base, 5)
	appendN(t, s, gen, 10)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, gen, 6)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, gen, 3) // uncheckpointed tail survives recovery as delta
	liveDigest1, _ := s.SegmentDigest(1)
	liveDigest2, _ := s.SegmentDigest(2)
	liveSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	liveHash := liveSnap.Hash()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, base)
	if r.Epoch() != 2 || r.DeltaRows() != 3 {
		t.Fatalf("recovered epoch %d delta %d, want 2/3", r.Epoch(), r.DeltaRows())
	}
	for i, want := range [][DigestSize]byte{liveDigest1, liveDigest2} {
		got, err := r.SegmentDigest(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("segment %d digest diverged after recovery", i+1)
		}
	}
	rs, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Hash() != liveHash {
		t.Fatal("recovered snapshot hash diverged from live store")
	}
	rt := r.Recovery()
	if rt.Records != 21 || rt.Checkpoints != 2 || rt.BytesDiscarded != 0 {
		t.Fatalf("recovery accounting %+v, want 21 records / 2 checkpoints / 0 discarded", rt)
	}
}

// TestWALRecoveryAccountingSeparate is the regression test for the
// double-count fix: recovery replay's time and page traffic live in
// RecoveryTiming only, and the serve path's pool accounting starts at zero
// no matter how much work replay did.
func TestWALRecoveryAccountingSeparate(t *testing.T) {
	base := testBase(t)
	dir := t.TempDir()
	s := openTestStore(t, dir, base)
	gen := NewRowGen(base, 13)
	appendN(t, s, gen, 40) // enough rows that the segment spans several chunks
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, base)
	rt := r.Recovery()
	if rt.Records != 41 || rt.Checkpoints != 1 {
		t.Fatalf("recovery replayed %d records / %d checkpoints, want 41/1", rt.Records, rt.Checkpoints)
	}
	if rt.Replay <= 0 || rt.BytesReplayed <= 0 {
		t.Fatalf("recovery timing not populated: %+v", rt)
	}
	if rt.SegmentPoolHits+rt.SegmentPoolMisses == 0 {
		t.Fatal("recovery rebuilt a multi-chunk segment heap without pool traffic")
	}
	// Serve-path accounting starts clean: replay's page traffic must not
	// leak into it.
	if ps := r.ServePoolStats(); ps.Hits != 0 || ps.Misses != 0 {
		t.Fatalf("serve pool stats %+v non-zero before any serve-path read", ps)
	}
	// A snapshot read moves serve stats but leaves recovery untouched —
	// Recovery is a side-effect-free read returning identical values.
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ps := r.ServePoolStats()
	if ps.Hits+ps.Misses == 0 {
		t.Fatal("snapshot read produced no serve-path pool traffic")
	}
	if again := r.Recovery(); again != rt {
		t.Fatalf("Recovery() changed after serving: %+v -> %+v", rt, again)
	}
}

func TestWALStoreFoldDeterministic(t *testing.T) {
	base := testBase(t)
	var digests [][DigestSize]byte
	var hashes []string
	for i := 0; i < 2; i++ {
		s := openTestStore(t, t.TempDir(), base)
		appendN(t, s, NewRowGen(base, 42), 9)
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		d, _ := s.SegmentDigest(1)
		digests = append(digests, d)
		sn, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, sn.Hash())
	}
	if digests[0] != digests[1] || hashes[0] != hashes[1] {
		t.Fatal("identical append streams folded to different segments")
	}
}
