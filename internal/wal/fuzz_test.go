package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
)

// fuzzRecord derives a well-formed record from fuzz bytes, so the fuzzer
// exercises the encoder on arbitrary shapes, not just the parser on noise.
func fuzzRecord(data []byte) Record {
	if len(data) == 0 {
		return Record{Type: RecRow}
	}
	kind := data[0]
	data = data[1:]
	u64 := func(i int) uint64 {
		var b [8]byte
		copy(b[:], data[min(i, len(data)):])
		return binary.LittleEndian.Uint64(b[:])
	}
	if kind%2 == 0 {
		rec := Record{Type: RecRow, Row: Row{Patient: datagen.Patient{
			ID:           int32(u64(0)),
			Age:          int32(u64(2)),
			Gender:       byte(u64(4)),
			Zipcode:      int32(u64(5)),
			DiseaseID:    int32(u64(7)),
			DrugResponse: math.Float64frombits(u64(9)), // arbitrary bits incl. NaN payloads
		}}}
		n := len(data) / 8
		rec.Row.Expr = make([]float64, n)
		for i := range rec.Row.Expr {
			rec.Row.Expr[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return rec
	}
	rec := Record{Type: RecCheckpoint, Checkpoint: Checkpoint{Epoch: u64(0), Rows: u64(8)}}
	copy(rec.Checkpoint.Digest[:], data)
	return rec
}

// FuzzWALRecord checks the WAL codec contract on arbitrary inputs:
// parse⇄encode is a fixed point, and parsing arbitrary bytes returns a typed
// ErrCorrupt — never a panic, never a silent partial record.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                                  // minimal row
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 42})      // checkpoint, epoch 1
	f.Add(sampleRow(3).AppendEncoded(nil))            // valid wire bytes
	f.Add(sampleCheckpoint().AppendEncoded(nil))      // valid checkpoint frame
	f.Add(sampleRow(2).AppendEncoded(nil)[:11])       // torn mid-body
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge declared length
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes through the parser: a typed error or a clean
		// record whose consumed bytes re-encode identically.
		if rec, n, err := ParseRecord(data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parse error is not ErrCorrupt: %v", err)
			}
		} else {
			if n < headerSize || n > len(data) {
				t.Fatalf("parse consumed %d of %d bytes", n, len(data))
			}
			if re := rec.AppendEncoded(nil); !bytes.Equal(re, data[:n]) {
				t.Fatalf("parse⇄encode not a fixed point:\n in  %x\n out %x", data[:n], re)
			}
		}

		// Scan never panics and returns a prefix it fully parsed.
		clean, err := Scan(data, nil)
		if err != nil || clean < 0 || clean > len(data) {
			t.Fatalf("scan: clean %d, err %v", clean, err)
		}

		// Derived record through the encoder: encode⇄parse round-trips to
		// the same bytes, and the frame self-describes its length.
		rec := fuzzRecord(data)
		enc := rec.AppendEncoded(nil)
		if len(enc) != rec.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), rec.EncodedLen())
		}
		got, n, err := ParseRecord(enc)
		if err != nil {
			t.Fatalf("parse of own encoding: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("own encoding: consumed %d of %d", n, len(enc))
		}
		if re := got.AppendEncoded(nil); !bytes.Equal(re, enc) {
			t.Fatalf("own encoding not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}
