package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := openLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestWALLogAppendDurable(t *testing.T) {
	l, path := openTestLog(t)
	recs := []Record{sampleRow(2), sampleCheckpoint(), sampleRow(0)}
	want := 0
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want += r.EncodedLen()
		// Durable on return: the bytes are on disk, not just buffered.
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(want) || l.Size() != int64(want) {
			t.Fatalf("after append: file %d, log %d, want %d", fi.Size(), l.Size(), want)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	clean, err := Scan(raw, func(r Record) error { got = append(got, r); return nil })
	if err != nil || clean != len(raw) {
		t.Fatalf("scan: clean %d of %d, err %v", clean, len(raw), err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, wrote %d", len(got), len(recs))
	}
}

// TestWALLogGroupCommit holds the first batch leader inside fsync while more
// appenders enqueue, then asserts the followers were flushed together: more
// appends than syncs, and everything durable.
func TestWALLogGroupCommit(t *testing.T) {
	l, _ := openTestLog(t)
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	var gateOnce sync.Once
	l.syncFn = func(f *os.File) error {
		entered <- struct{}{}
		gateOnce.Do(func() { <-gate }) // only the first sync blocks
		return f.Sync()
	}

	// Leader: its sync blocks on the gate.
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- l.Append(sampleRow(1)) }()
	<-entered // leader is inside fsync; its record left pending

	// Followers enqueue while the leader is stuck.
	const followers = 5
	var wg sync.WaitGroup
	results := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- l.Append(sampleRow(2))
		}()
	}
	// Wait until all followers have enqueued (pending holds their bytes).
	wantPending := followers * sampleRow(2).EncodedLen()
	for deadline := time.Now().Add(5 * time.Second); l.pendingLen() < wantPending; {
		if time.Now().After(deadline) {
			t.Fatalf("followers never enqueued: pending %d, want %d", l.pendingLen(), wantPending)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
	if app, syncs := l.Appends.Load(), l.Syncs.Load(); syncs >= app {
		t.Fatalf("no batching: %d appends, %d syncs", app, syncs)
	}
	// All 5 followers flushed as one batch (the leader's own batch plus one).
	if b := l.Batches.Load(); b != 2 {
		t.Fatalf("batches = %d, want 2 (leader alone, then the follower batch)", b)
	}
	if l.pendingLen() != 0 {
		t.Fatalf("pending %d bytes after all appends durable", l.pendingLen())
	}
}

func TestWALLogSyncFailureIsSticky(t *testing.T) {
	l, _ := openTestLog(t)
	boom := errors.New("disk gone")
	l.syncFn = func(*os.File) error { return boom }
	if err := l.Append(sampleRow(1)); !errors.Is(err, boom) {
		t.Fatalf("first append: %v, want %v", err, boom)
	}
	// Restore the disk; the log must stay poisoned anyway.
	l.syncFn = (*os.File).Sync
	if err := l.Append(sampleRow(1)); !errors.Is(err, boom) {
		t.Fatalf("poisoned append: %v, want sticky %v", err, boom)
	}
}

func TestWALLogConcurrentAppendAllDurable(t *testing.T) {
	l, path := openTestLog(t)
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(sampleRow(g % 4)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	clean, err := Scan(raw, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if clean != len(raw) || count != goroutines*each {
		t.Fatalf("replayed %d records over %d clean of %d bytes, want %d records",
			count, clean, len(raw), goroutines*each)
	}
	if l.Syncs.Load() > l.Appends.Load() {
		t.Fatalf("%d syncs for %d appends", l.Syncs.Load(), l.Appends.Load())
	}
}
