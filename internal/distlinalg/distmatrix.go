// Package distlinalg is the ScaLAPACK/pbdR stand-in: matrices distributed
// by row blocks over the virtual cluster, with distributed Gram products,
// column statistics, mat-vec (for Lanczos), and least squares. Per-node
// compute is real executed Go, with the per-node partials of every reduction
// running concurrently through cluster.ExecAll when the host has spare cores
// (each node's kernel pinned to one worker so virtual-time calibration is
// unchanged); communication and synchronization are charged to the cluster's
// virtual clocks.
//
// # Shards versus nodes
//
// A DistMatrix is partitioned into numeric shards — contiguous row blocks
// whose count is fixed by the data layout, not by the cluster size — and each
// shard is placed on an owner node (contiguous groups, like SciDB chunks or a
// block-cyclic layout's blocks). Every reduction computes one partial per
// shard and combines partials in shard order on the coordinator, so the
// floating-point result is a pure function of the shard partition: adding or
// removing nodes moves shards between clocks but cannot change a single bit
// of any answer (DESIGN.md §13). Node count only shapes the virtual timing —
// per-node compute shrinks as shards spread out, communication does not.
package distlinalg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// DefaultNumericShards is the default shard count: the paper's largest
// cluster (4 nodes), so the numerics at any node count coincide exactly with
// what the pre-plan per-node partitioning produced on the 4-node
// configuration. Scaling sweeps beyond 4 nodes raise the shard count
// explicitly (and accept the different — still deterministic — partition).
const DefaultNumericShards = 4

// ShardOwners places shards contiguous-first onto nodes: the same split rule
// cluster.Partition applies to rows, so at shards == nodes every shard sits
// on its own node. Extra nodes beyond the shard count stay idle — the
// chunk-limited parallelism real fixed-chunk stores exhibit.
func ShardOwners(shards, nodes int) []int {
	if nodes < 1 {
		nodes = 1
	}
	owners := make([]int, shards)
	per := shards / nodes
	rem := shards % nodes
	s := 0
	for n := 0; n < nodes && s < shards; n++ {
		take := per
		if n < rem {
			take++
		}
		for k := 0; k < take; k++ {
			owners[s] = n
			s++
		}
	}
	return owners
}

// SplitIDsByBlock partitions ascending global row ids by the shard
// boundaries: out[s] holds the ids in [starts[s], starts[s+1]). It is the
// shard-aware predicate pushdown helper — a selection over replicated
// metadata splits into per-shard id lists that each owner node pivots
// locally, instead of gathering rows to the coordinator.
func SplitIDsByBlock(starts []int, ids []int64) [][]int64 {
	shards := len(starts) - 1
	out := make([][]int64, shards)
	s := 0
	lo := 0
	for i, id := range ids {
		for s < shards-1 && id >= int64(starts[s+1]) {
			out[s] = ids[lo:i:i]
			lo = i
			s++
		}
	}
	out[s] = ids[lo:]
	return out
}

// DistMatrix is a dense matrix split into contiguous row blocks (numeric
// shards), each placed on an owner node. With a cluster ReplicationFactor
// above 1, each shard additionally lists replica nodes holding an identical
// copy; shard work fails over (or hedges) onto them without changing a bit
// of any answer, because every reduction is a pure function of the shard
// partition (see the package comment and DESIGN.md §14).
type DistMatrix struct {
	C      *cluster.Cluster
	Parts  []*linalg.Matrix // Parts[s] is shard s (may have 0 rows)
	Starts []int            // row offsets; Parts[s] covers [Starts[s], Starts[s+1])
	Owners []int            // Owners[s] is the node holding shard s
	// Replicas[s] lists the nodes holding shard s in failover preference
	// order; Replicas[s][0] == Owners[s]. Nil means unreplicated.
	Replicas [][]int
	Cols     int
}

// replicas returns the shard→candidate-nodes table, defaulting to the
// single-copy owner placement for matrices built before replication existed
// (struct-literal construction in tests).
func (d *DistMatrix) replicas() [][]int {
	if d.Replicas != nil {
		return d.Replicas
	}
	out := make([][]int, len(d.Owners))
	for s, o := range d.Owners {
		out[s] = []int{o}
	}
	return out
}

// Distribute scatters m from the coordinator (node 0) into
// DefaultNumericShards row blocks placed contiguously over the nodes,
// charging the scatter communication.
func Distribute(c *cluster.Cluster, m *linalg.Matrix) *DistMatrix {
	starts := partitionRows(m.Rows, DefaultNumericShards)
	shards := len(starts) - 1
	d := &DistMatrix{C: c, Starts: starts, Cols: m.Cols,
		Owners:   ShardOwners(shards, c.Nodes()),
		Replicas: ReplicaPlacement(shards, c.Nodes(), c.ReplicationFactor())}
	for s := 0; s+1 < len(starts); s++ {
		rows := starts[s+1] - starts[s]
		part := linalg.NewMatrix(rows, m.Cols)
		for r := 0; r < rows; r++ {
			copy(part.Row(r), m.Row(starts[s]+r))
		}
		d.Parts = append(d.Parts, part)
		for _, o := range d.Replicas[s] {
			if o != 0 {
				c.Send(0, o, int64(rows)*int64(m.Cols)*8)
			}
		}
	}
	c.Barrier()
	return d
}

// partitionRows splits n rows into the given number of contiguous blocks
// (cluster.Partition's rule, independent of any cluster).
func partitionRows(n, blocks int) []int {
	if blocks < 1 {
		blocks = 1
	}
	starts := make([]int, blocks+1)
	per := n / blocks
	rem := n % blocks
	pos := 0
	for i := 0; i < blocks; i++ {
		starts[i] = pos
		pos += per
		if i < rem {
			pos++
		}
	}
	starts[blocks] = n
	return starts
}

// PartitionRows exposes the shard split rule (Load-time partitioning in the
// multi-node engines uses it so their shard boundaries match FromParts').
func PartitionRows(n, shards int) []int { return partitionRows(n, shards) }

// FromParts wraps already-partitioned shards (data that was loaded
// partitioned, so no scatter cost — pbdR's "we evenly partitioned the data
// between nodes"), placing them contiguously over the cluster's nodes.
// Replica copies count as loaded alongside the primaries (load-time
// replication, like HDFS block placement), so they carry no scatter cost
// either.
func FromParts(c *cluster.Cluster, parts []*linalg.Matrix) *DistMatrix {
	d := &DistMatrix{C: c, Cols: 0,
		Owners:   ShardOwners(len(parts), c.Nodes()),
		Replicas: ReplicaPlacement(len(parts), c.Nodes(), c.ReplicationFactor())}
	starts := make([]int, len(parts)+1)
	for i, p := range parts {
		starts[i+1] = starts[i] + p.Rows
		if p.Cols > d.Cols {
			d.Cols = p.Cols
		}
	}
	d.Parts = parts
	d.Starts = starts
	return d
}

// Rows is the global row count.
func (d *DistMatrix) Rows() int { return d.Starts[len(d.Starts)-1] }

// execParts runs fn once per shard through the fault-tolerant shard
// scheduler: each shard runs on its primary, failing over to replicas when
// nodes die and hedging off stragglers (RunShards). Callers must make the
// shard closures independent AND idempotent — they write disjoint per-shard
// slots, so a failover re-execution rewrites the same slot with the same
// bits — which also keeps results identical on the serial and concurrent
// paths.
func (d *DistMatrix) execParts(fn func(s int) error) error {
	return RunShards(context.Background(), d.C, d.replicas(), fn)
}

// LiveOwner returns the first live node holding shard s — its primary when
// healthy, the failover read path otherwise. A shard with no live copy left
// returns a typed engine.ErrReplicasExhausted.
func (d *DistMatrix) LiveOwner(s int) (int, error) {
	for _, o := range d.replicas()[s] {
		if !d.C.IsDead(o) {
			return o, nil
		}
	}
	return -1, fmt.Errorf("distlinalg: shard %d: no live replica: %w",
		s, engine.ErrReplicasExhausted)
}

// Gather collects all shards on the coordinator and returns the full matrix
// (used when an algorithm does not distribute, e.g. biclustering). Row
// concatenation is shard-order, so the gathered matrix is identical at any
// node count and under any failover (each shard is sent from its first live
// replica). A shard with no live replica fails the gather with a typed
// engine.ErrReplicasExhausted.
func (d *DistMatrix) Gather() (*linalg.Matrix, error) {
	root := d.C.Coordinator()
	m := linalg.NewMatrix(d.Rows(), d.Cols)
	for s, part := range d.Parts {
		src, err := d.LiveOwner(s)
		if err != nil {
			return nil, err
		}
		if src != root {
			d.C.Send(src, root, int64(part.Rows)*int64(part.Cols)*8)
		}
		for r := 0; r < part.Rows; r++ {
			copy(m.Row(d.Starts[s]+r), part.Row(r))
		}
	}
	d.C.Barrier()
	return m, nil
}

// ColumnSums computes per-column sums with one partial per shard (computed
// concurrently across owner nodes when the host has spare cores) and a
// shard-order reduction on the coordinator.
func (d *DistMatrix) ColumnSums() ([]float64, error) {
	partials := make([][]float64, len(d.Parts))
	if err := d.execParts(func(s int) error {
		part := d.Parts[s]
		sums := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			row := part.Row(r)
			for j, v := range row {
				sums[j] += v
			}
		}
		partials[s] = sums
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(d.C.Coordinator(), int64(d.Cols)*8)
	var total []float64
	err := d.C.ExecCoordinator(func() error {
		total = make([]float64, d.Cols)
		for _, p := range partials {
			for j, v := range p {
				total[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return total, nil
}

// Gram computes XᵀX with per-shard partial Gram matrices reduced on the
// coordinator — ScaLAPACK's pdsyrk pattern.
func (d *DistMatrix) Gram() (*linalg.Matrix, error) {
	return d.gramCentered(nil)
}

// CenteredGram computes (X−mean)ᵀ(X−mean) given column means.
func (d *DistMatrix) CenteredGram(means []float64) (*linalg.Matrix, error) {
	return d.gramCentered(means)
}

func (d *DistMatrix) gramCentered(means []float64) (*linalg.Matrix, error) {
	// Per-shard partial Grams run concurrently across owner nodes (the
	// host-level parallelism the shared pool provides); each shard's kernel is
	// pinned to one worker so its measured duration still models a single
	// virtual node's core.
	partials := make([]*linalg.Matrix, len(d.Parts))
	if err := d.execParts(func(s int) error {
		part := d.Parts[s]
		if means == nil {
			partials[s] = linalg.MulATAP(part, 1)
			return nil
		}
		centered := linalg.NewMatrix(part.Rows, part.Cols)
		for r := 0; r < part.Rows; r++ {
			src, dst := part.Row(r), centered.Row(r)
			for j, v := range src {
				dst[j] = v - means[j]
			}
		}
		partials[s] = linalg.MulATAP(centered, 1)
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(d.C.Coordinator(), int64(d.Cols)*int64(d.Cols)*8)
	var gram *linalg.Matrix
	err := d.C.ExecCoordinator(func() error {
		gram = linalg.NewMatrix(d.Cols, d.Cols)
		for _, p := range partials {
			gram.Add(gram, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return gram, nil
}

// Covariance computes the distributed sample covariance of the columns.
func (d *DistMatrix) Covariance() (*linalg.Matrix, error) {
	n := d.Rows()
	if n < 2 {
		return linalg.NewMatrix(d.Cols, d.Cols), nil
	}
	sums, err := d.ColumnSums()
	if err != nil {
		return nil, err
	}
	means := make([]float64, d.Cols)
	for j, s := range sums {
		means[j] = s / float64(n)
	}
	d.C.Broadcast(d.C.Coordinator(), int64(d.Cols)*8)
	d.C.Barrier()
	cov, err := d.CenteredGram(means)
	if err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(n-1))
	return cov, nil
}

// XtY computes Xᵀy with per-shard partials; y is indexed by global row.
func (d *DistMatrix) XtY(y []float64) ([]float64, error) {
	if len(y) != d.Rows() {
		return nil, errors.New("distlinalg: XtY length mismatch")
	}
	partials := make([][]float64, len(d.Parts))
	if err := d.execParts(func(s int) error {
		part := d.Parts[s]
		sums := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			linalg.Axpy(y[d.Starts[s]+r], part.Row(r), sums)
		}
		partials[s] = sums
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(d.C.Coordinator(), int64(d.Cols)*8)
	var total []float64
	err := d.C.ExecCoordinator(func() error {
		total = make([]float64, d.Cols)
		for _, p := range partials {
			for j, v := range p {
				total[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return total, nil
}

// LeastSquares solves min ‖Xβ − y‖ via the distributed normal equations
// (Gram + XtY reduced to the coordinator, small solve there) and reports
// R² from a distributed residual pass.
func (d *DistMatrix) LeastSquares(y []float64) (*linalg.LeastSquaresResult, error) {
	gram, err := d.Gram()
	if err != nil {
		return nil, err
	}
	aty, err := d.XtY(y)
	if err != nil {
		return nil, err
	}
	var beta []float64
	err = d.C.ExecCoordinator(func() error {
		qr, qerr := linalg.NewQR(gram)
		if qerr != nil {
			return qerr
		}
		beta, qerr = qr.Solve(aty)
		return qerr
	})
	if err != nil {
		return nil, err
	}
	d.C.Broadcast(d.C.Coordinator(), int64(len(beta))*8)
	d.C.Barrier()

	// Distributed residual pass, one partial per shard, shard-order sum.
	ssParts := make([]float64, len(d.Parts))
	if err := d.execParts(func(s int) error {
		part := d.Parts[s]
		ss := 0.0
		for r := 0; r < part.Rows; r++ {
			pred := linalg.Dot(part.Row(r), beta)
			diff := y[d.Starts[s]+r] - pred
			ss += diff * diff
		}
		ssParts[s] = ss
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(d.C.Coordinator(), 8)
	ssRes := 0.0
	for _, v := range ssParts {
		ssRes += v
	}
	my := linalg.Mean(y)
	ssTot := 0.0
	for _, v := range y {
		ssTot += (v - my) * (v - my)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	d.C.Barrier()
	return &linalg.LeastSquaresResult{Coefficients: beta, Residual: math.Sqrt(ssRes), RSquared: r2}, nil
}

// ATAOperator is the distributed Lanczos operator: each iteration does local
// y = A_s·x and z_s = A_sᵀ·y per shard, then an all-reduce of the z partials
// — the communication pattern that limits multi-node SVD scaling (Figure 3c).
type ATAOperator struct {
	D   *DistMatrix
	Err error
}

// Dim implements linalg.LinearOperator.
func (o *ATAOperator) Dim() int { return o.D.Cols }

// Apply implements linalg.LinearOperator.
func (o *ATAOperator) Apply(x []float64) []float64 {
	d := o.D
	z := make([]float64, d.Cols)
	if o.Err != nil {
		return z
	}
	partials := make([][]float64, len(d.Parts))
	if err := d.execParts(func(s int) error {
		part := d.Parts[s]
		local := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			row := part.Row(r)
			yi := linalg.Dot(row, x)
			linalg.Axpy(yi, row, local)
		}
		partials[s] = local
		return nil
	}); err != nil {
		o.Err = err
		return z
	}
	d.C.AllReduce(int64(d.Cols) * 8)
	if err := d.C.ExecCoordinator(func() error {
		// Re-zero so a coordinator failover re-execution stays idempotent.
		for j := range z {
			z[j] = 0
		}
		for _, p := range partials {
			for j, v := range p {
				z[j] += v
			}
		}
		return nil
	}); err != nil {
		o.Err = err
	}
	d.C.Barrier()
	return z
}

// TopKSingularValues runs distributed Lanczos and returns the k largest
// singular values of the distributed matrix.
func (d *DistMatrix) TopKSingularValues(k int, seed uint64) ([]float64, error) {
	op := &ATAOperator{D: d}
	eig, err := linalg.Lanczos(op, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed})
	if op.Err != nil {
		return nil, op.Err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	return sv, nil
}
