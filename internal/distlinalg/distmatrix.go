// Package distlinalg is the ScaLAPACK/pbdR stand-in: matrices distributed
// by row blocks over the virtual cluster, with distributed Gram products,
// column statistics, mat-vec (for Lanczos), and least squares. Per-node
// compute is real executed Go, with the per-node partials of every reduction
// running concurrently through cluster.ExecAll when the host has spare cores
// (each node's kernel pinned to one worker so virtual-time calibration is
// unchanged); communication and synchronization are charged to the cluster's
// virtual clocks.
package distlinalg

import (
	"errors"
	"math"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/linalg"
)

// DistMatrix is a dense matrix split into contiguous row blocks, one per
// node.
type DistMatrix struct {
	C      *cluster.Cluster
	Parts  []*linalg.Matrix // Parts[i] lives on node i (may have 0 rows)
	Starts []int            // row offsets; Parts[i] covers [Starts[i], Starts[i+1])
	Cols   int
}

// Distribute scatters m from the coordinator (node 0) into row blocks,
// charging the scatter communication.
func Distribute(c *cluster.Cluster, m *linalg.Matrix) *DistMatrix {
	starts := c.Partition(m.Rows)
	d := &DistMatrix{C: c, Starts: starts, Cols: m.Cols}
	for i := 0; i < c.Nodes(); i++ {
		rows := starts[i+1] - starts[i]
		part := linalg.NewMatrix(rows, m.Cols)
		for r := 0; r < rows; r++ {
			copy(part.Row(r), m.Row(starts[i]+r))
		}
		d.Parts = append(d.Parts, part)
		if i != 0 {
			c.Send(0, i, int64(rows)*int64(m.Cols)*8)
		}
	}
	c.Barrier()
	return d
}

// FromParts wraps already-partitioned blocks (data that was loaded
// partitioned, so no scatter cost — pbdR's "we evenly partitioned the data
// between nodes").
func FromParts(c *cluster.Cluster, parts []*linalg.Matrix) *DistMatrix {
	d := &DistMatrix{C: c, Cols: 0}
	starts := make([]int, len(parts)+1)
	for i, p := range parts {
		starts[i+1] = starts[i] + p.Rows
		if p.Cols > d.Cols {
			d.Cols = p.Cols
		}
	}
	d.Parts = parts
	d.Starts = starts
	return d
}

// Rows is the global row count.
func (d *DistMatrix) Rows() int { return d.Starts[len(d.Starts)-1] }

// Gather collects all blocks on the coordinator and returns the full matrix
// (used when an algorithm does not distribute, e.g. biclustering).
func (d *DistMatrix) Gather() *linalg.Matrix {
	m := linalg.NewMatrix(d.Rows(), d.Cols)
	for i, part := range d.Parts {
		if i != 0 {
			d.C.Send(i, 0, int64(part.Rows)*int64(part.Cols)*8)
		}
		for r := 0; r < part.Rows; r++ {
			copy(m.Row(d.Starts[i]+r), part.Row(r))
		}
	}
	d.C.Barrier()
	return m
}

// ColumnSums computes per-column sums with local partials (one per node,
// computed concurrently when the host has spare cores) and a reduction to
// the coordinator.
func (d *DistMatrix) ColumnSums() ([]float64, error) {
	partials := make([][]float64, len(d.Parts))
	if err := d.C.ExecAll(func(i int) error {
		part := d.Parts[i]
		s := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			row := part.Row(r)
			for j, v := range row {
				s[j] += v
			}
		}
		partials[i] = s
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(0, int64(d.Cols)*8)
	var total []float64
	err := d.C.Exec(0, func() error {
		total = make([]float64, d.Cols)
		for _, p := range partials {
			for j, v := range p {
				total[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return total, nil
}

// Gram computes XᵀX with per-node partial Gram matrices reduced on the
// coordinator — ScaLAPACK's pdsyrk pattern.
func (d *DistMatrix) Gram() (*linalg.Matrix, error) {
	return d.gramCentered(nil)
}

// CenteredGram computes (X−mean)ᵀ(X−mean) given column means.
func (d *DistMatrix) CenteredGram(means []float64) (*linalg.Matrix, error) {
	return d.gramCentered(means)
}

func (d *DistMatrix) gramCentered(means []float64) (*linalg.Matrix, error) {
	// Per-node partial Grams run concurrently across nodes (the host-level
	// parallelism the shared pool provides); each node's kernel is pinned to
	// one worker so its measured duration still models a single virtual node.
	partials := make([]*linalg.Matrix, len(d.Parts))
	if err := d.C.ExecAll(func(i int) error {
		part := d.Parts[i]
		if means == nil {
			partials[i] = linalg.MulATAP(part, 1)
			return nil
		}
		centered := linalg.NewMatrix(part.Rows, part.Cols)
		for r := 0; r < part.Rows; r++ {
			src, dst := part.Row(r), centered.Row(r)
			for j, v := range src {
				dst[j] = v - means[j]
			}
		}
		partials[i] = linalg.MulATAP(centered, 1)
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(0, int64(d.Cols)*int64(d.Cols)*8)
	var gram *linalg.Matrix
	err := d.C.Exec(0, func() error {
		gram = linalg.NewMatrix(d.Cols, d.Cols)
		for _, p := range partials {
			gram.Add(gram, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return gram, nil
}

// Covariance computes the distributed sample covariance of the columns.
func (d *DistMatrix) Covariance() (*linalg.Matrix, error) {
	n := d.Rows()
	if n < 2 {
		return linalg.NewMatrix(d.Cols, d.Cols), nil
	}
	sums, err := d.ColumnSums()
	if err != nil {
		return nil, err
	}
	means := make([]float64, d.Cols)
	for j, s := range sums {
		means[j] = s / float64(n)
	}
	d.C.Broadcast(0, int64(d.Cols)*8)
	d.C.Barrier()
	cov, err := d.CenteredGram(means)
	if err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(n-1))
	return cov, nil
}

// XtY computes Xᵀy with distributed partials; y is indexed by global row.
func (d *DistMatrix) XtY(y []float64) ([]float64, error) {
	if len(y) != d.Rows() {
		return nil, errors.New("distlinalg: XtY length mismatch")
	}
	partials := make([][]float64, len(d.Parts))
	if err := d.C.ExecAll(func(i int) error {
		part := d.Parts[i]
		s := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			linalg.Axpy(y[d.Starts[i]+r], part.Row(r), s)
		}
		partials[i] = s
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(0, int64(d.Cols)*8)
	var total []float64
	err := d.C.Exec(0, func() error {
		total = make([]float64, d.Cols)
		for _, p := range partials {
			for j, v := range p {
				total[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.C.Barrier()
	return total, nil
}

// LeastSquares solves min ‖Xβ − y‖ via the distributed normal equations
// (Gram + XtY reduced to the coordinator, small solve there) and reports
// R² from a distributed residual pass.
func (d *DistMatrix) LeastSquares(y []float64) (*linalg.LeastSquaresResult, error) {
	gram, err := d.Gram()
	if err != nil {
		return nil, err
	}
	aty, err := d.XtY(y)
	if err != nil {
		return nil, err
	}
	var beta []float64
	err = d.C.Exec(0, func() error {
		qr, qerr := linalg.NewQR(gram)
		if qerr != nil {
			return qerr
		}
		beta, qerr = qr.Solve(aty)
		return qerr
	})
	if err != nil {
		return nil, err
	}
	d.C.Broadcast(0, int64(len(beta))*8)
	d.C.Barrier()

	// Distributed residual pass.
	ssParts := make([]float64, len(d.Parts))
	if err := d.C.ExecAll(func(i int) error {
		part := d.Parts[i]
		ss := 0.0
		for r := 0; r < part.Rows; r++ {
			pred := linalg.Dot(part.Row(r), beta)
			diff := y[d.Starts[i]+r] - pred
			ss += diff * diff
		}
		ssParts[i] = ss
		return nil
	}); err != nil {
		return nil, err
	}
	d.C.Gather(0, 8)
	ssRes := 0.0
	for _, v := range ssParts {
		ssRes += v
	}
	my := linalg.Mean(y)
	ssTot := 0.0
	for _, v := range y {
		ssTot += (v - my) * (v - my)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	d.C.Barrier()
	return &linalg.LeastSquaresResult{Coefficients: beta, Residual: math.Sqrt(ssRes), RSquared: r2}, nil
}

// ATAOperator is the distributed Lanczos operator: each iteration does local
// y = A_i·x and zᵢ = A_iᵀ·y, then an all-reduce of the z partials — the
// communication pattern that limits multi-node SVD scaling (Figure 3c).
type ATAOperator struct {
	D   *DistMatrix
	Err error
}

// Dim implements linalg.LinearOperator.
func (o *ATAOperator) Dim() int { return o.D.Cols }

// Apply implements linalg.LinearOperator.
func (o *ATAOperator) Apply(x []float64) []float64 {
	d := o.D
	z := make([]float64, d.Cols)
	if o.Err != nil {
		return z
	}
	partials := make([][]float64, len(d.Parts))
	if err := d.C.ExecAll(func(i int) error {
		part := d.Parts[i]
		local := make([]float64, d.Cols)
		for r := 0; r < part.Rows; r++ {
			row := part.Row(r)
			yi := linalg.Dot(row, x)
			linalg.Axpy(yi, row, local)
		}
		partials[i] = local
		return nil
	}); err != nil {
		o.Err = err
		return z
	}
	d.C.AllReduce(int64(d.Cols) * 8)
	if err := d.C.Exec(0, func() error {
		for _, p := range partials {
			for j, v := range p {
				z[j] += v
			}
		}
		return nil
	}); err != nil {
		o.Err = err
	}
	d.C.Barrier()
	return z
}

// TopKSingularValues runs distributed Lanczos and returns the k largest
// singular values of the distributed matrix.
func (d *DistMatrix) TopKSingularValues(k int, seed uint64) ([]float64, error) {
	op := &ATAOperator{D: d}
	eig, err := linalg.Lanczos(op, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed})
	if op.Err != nil {
		return nil, op.Err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	return sv, nil
}
