package distlinalg

import (
	"context"
	"errors"
	"fmt"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/engine"
)

// ReplicaPlacement places factor copies of each shard onto nodes: copy 0 is
// the ShardOwners primary, copy i sits on the next node ring-wise — the
// successor-replication rule consistent-hashing stores use, so losing any
// single node leaves every shard with a live copy once factor ≥ 2. The
// factor is clamped to [1, nodes] (a node holds at most one copy of a
// shard).
func ReplicaPlacement(shards, nodes, factor int) [][]int {
	if nodes < 1 {
		nodes = 1
	}
	if factor < 1 {
		factor = 1
	}
	if factor > nodes {
		factor = nodes
	}
	owners := ShardOwners(shards, nodes)
	out := make([][]int, shards)
	for s, o := range owners {
		replicas := make([]int, factor)
		for i := 0; i < factor; i++ {
			replicas[i] = (o + i) % nodes
		}
		out[s] = replicas
	}
	return out
}

// RunShards executes fn once per shard on the virtual cluster, surviving
// injected faults (DESIGN.md §14):
//
//   - Each shard is dispatched to the first viable node in its replica list
//     (its primary, fault-free), one Exec per shard so crash schedules and
//     timing resolve at shard granularity.
//   - Straggler hedging: when a node's injected slow factor reaches the
//     hedge threshold, its shards are speculatively re-routed to a healthy
//     replica before dispatch; the winner is committed in shard order like
//     every other partial, and the straggler's cancelled attempt is charged
//     as hedge overhead. The decision reads the fault plan, not measured
//     time, so it is deterministic.
//   - Failover: a shard whose node dies (crash fault, exec timeout) is
//     re-dispatched to its next untried live replica in a follow-up wave,
//     paying the virtual detection delay.
//
// Because fn is a pure function of the shard (replicas hold identical data
// and every attempt either runs to completion or not at all), re-execution
// on any replica reproduces the primary's result bit for bit; recovery can
// change only the virtual clocks, never an answer.
//
// A shard with no untried live replica left fails the call with a typed
// engine.ErrReplicasExhausted wrapping the per-attempt errors. Genuine
// compute errors from fn (anything that is not an injected fault) cancel
// in-flight siblings and abort immediately.
func RunShards(ctx context.Context, c *cluster.Cluster, replicas [][]int, fn func(s int) error) error {
	shards := len(replicas)
	tried := make([]map[int]bool, shards)
	attemptErrs := make([][]error, shards)
	pending := make([]int, shards)
	for s := range pending {
		pending[s] = s
		tried[s] = make(map[int]bool)
	}

	for len(pending) > 0 {
		// Route every pending shard to a node (single-goroutine, between
		// waves, so dead/slow state reads are race-free).
		assign := make([][]int, c.Nodes())
		var exhausted []error
		for _, s := range pending {
			node, hedged, failedOver := routeShard(c, replicas[s], tried[s])
			if node < 0 {
				exhausted = append(exhausted, fmt.Errorf(
					"shard %d: %w", s, errors.Join(append(attemptErrs[s], engine.ErrReplicasExhausted)...)))
				continue
			}
			if hedged {
				c.ChargeHedge(node)
			}
			if failedOver {
				c.ChargeFailoverDetect(node)
			}
			tried[s][node] = true
			assign[node] = append(assign[node], s)
		}
		if len(exhausted) > 0 {
			return errors.Join(exhausted...)
		}

		// One wave: each node runs its shards in ascending order, one Exec
		// per shard. Injected faults are recorded per shard for the next
		// routing round; anything else aborts the wave.
		shardErrs := make([]error, shards)
		waveErr := c.RunNodes(ctx, func(cctx context.Context, node int) error {
			for _, s := range assign[node] {
				err := c.ExecCtx(cctx, node, func() error { return fn(s) })
				if err == nil {
					continue
				}
				if errors.Is(err, engine.ErrNodeFailed) || errors.Is(err, engine.ErrTransient) {
					shardErrs[s] = err
					continue // a dead node fails its remaining shards fast
				}
				return err
			}
			return nil
		})
		if waveErr != nil {
			return waveErr
		}
		pending = pending[:0]
		for s, err := range shardErrs {
			if err != nil {
				attemptErrs[s] = append(attemptErrs[s], err)
				pending = append(pending, s)
			}
		}
	}
	return nil
}

// routeShard picks the execution node for one shard attempt: the first
// candidate in replica order that is untried and not known-dead, skipping
// hedge-threshold stragglers when a healthier replica exists further down.
// hedged reports a straggler skip, failedOver that the shard's primary was
// unavailable (dead or already failed). Returns node -1 when no candidate
// remains.
func routeShard(c *cluster.Cluster, candidates []int, tried map[int]bool) (node int, hedged, failedOver bool) {
	first := -1 // first untried live candidate, the default target
	hf := c.HedgeFactor()
	for _, n := range candidates {
		if tried[n] || c.IsDead(n) {
			continue
		}
		if first < 0 {
			first = n
		}
		if hf <= 0 || c.NodeSlowFactor(n) < hf {
			primaryLost := tried[candidates[0]] || c.IsDead(candidates[0])
			return n, n != first, primaryLost
		}
	}
	if first < 0 {
		return -1, false, false
	}
	// Every remaining replica is a straggler: run on the first anyway.
	return first, false, tried[candidates[0]] || c.IsDead(candidates[0])
}
