package distlinalg

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/linalg"
)

func randMatrix(r, c int, seed uint64) *linalg.Matrix {
	rng := datagen.NewRNG(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func dist(nodes int, m *linalg.Matrix) (*cluster.Cluster, *DistMatrix) {
	c := cluster.New(cluster.DefaultConfig(nodes))
	return c, Distribute(c, m)
}

func TestDistributePreservesData(t *testing.T) {
	m := randMatrix(17, 5, 1)
	_, d := dist(3, m)
	if d.Rows() != 17 || d.Cols != 5 {
		t.Fatalf("shape %dx%d", d.Rows(), d.Cols)
	}
	back, err := d.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(m, back) != 0 {
		t.Fatal("scatter/gather corrupted data")
	}
}

func TestGramMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		nodes := int(seed%4) + 1
		m := randMatrix(int((seed>>8)%30)+nodes, int((seed>>16)%8)+2, seed)
		_, d := dist(nodes, m)
		gram, err := d.Gram()
		if err != nil {
			return false
		}
		want := linalg.MulATA(m)
		return linalg.MaxAbsDiff(gram, want) < 1e-9*(1+want.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceMatchesDense(t *testing.T) {
	m := randMatrix(40, 7, 5)
	_, d := dist(4, m)
	cov, err := d.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.Covariance(m)
	if linalg.MaxAbsDiff(cov, want) > 1e-10 {
		t.Fatalf("diff %v", linalg.MaxAbsDiff(cov, want))
	}
}

func TestColumnSumsMatchesDense(t *testing.T) {
	m := randMatrix(23, 6, 9)
	_, d := dist(3, m)
	sums, err := d.ColumnSums()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		want := 0.0
		for i := 0; i < 23; i++ {
			want += m.At(i, j)
		}
		if math.Abs(sums[j]-want) > 1e-10 {
			t.Fatalf("col %d: %v vs %v", j, sums[j], want)
		}
	}
}

func TestXtYMatchesDense(t *testing.T) {
	m := randMatrix(19, 4, 11)
	y := randMatrix(19, 1, 12).Col(0)
	_, d := dist(2, m)
	got, err := d.XtY(y)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.MatTVec(m, y)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-10 {
			t.Fatalf("j=%d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestLeastSquaresMatchesQR(t *testing.T) {
	m := randMatrix(60, 5, 21)
	beta0 := []float64{1, -2, 0.5, 3, -1}
	y := linalg.MatVec(m, beta0)
	rng := datagen.NewRNG(22)
	for i := range y {
		y[i] += 0.01 * rng.NormFloat64()
	}
	want, err := linalg.LeastSquares(m, y)
	if err != nil {
		t.Fatal(err)
	}
	_, d := dist(3, m)
	got, err := d.LeastSquares(y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Coefficients {
		if math.Abs(got.Coefficients[j]-want.Coefficients[j]) > 1e-6 {
			t.Fatalf("coef %d: %v vs %v", j, got.Coefficients[j], want.Coefficients[j])
		}
	}
	if math.Abs(got.RSquared-want.RSquared) > 1e-8 {
		t.Fatalf("R² %v vs %v", got.RSquared, want.RSquared)
	}
}

func TestTopKSingularValuesMatchesDense(t *testing.T) {
	m := randMatrix(35, 12, 31)
	want, err := linalg.TopKSVD(m, 4, linalg.LanczosOptions{Reorthogonalize: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, d := dist(4, m)
	got, err := d.TopKSingularValues(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.SingularValues {
		if math.Abs(got[i]-want.SingularValues[i]) > 1e-6*(1+want.SingularValues[0]) {
			t.Fatalf("σ[%d]: %v vs %v", i, got[i], want.SingularValues[i])
		}
	}
}

func TestCommunicationCharged(t *testing.T) {
	m := randMatrix(30, 6, 41)
	c, d := dist(3, m)
	c.Reset()
	if _, err := d.Gram(); err != nil {
		t.Fatal(err)
	}
	if c.MessagesSent == 0 {
		t.Fatal("distributed gram must communicate")
	}
	if c.MakespanSeconds() <= 0 {
		t.Fatal("virtual time must advance")
	}
}

func TestSingleNodeNoNetwork(t *testing.T) {
	m := randMatrix(30, 6, 41)
	c, d := dist(1, m)
	c.Reset()
	if _, err := d.Covariance(); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent != 0 {
		t.Fatal("single node should not use the network")
	}
}

func TestFromPartsNoScatterCost(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig(2))
	parts := []*linalg.Matrix{randMatrix(5, 3, 1), randMatrix(4, 3, 2)}
	d := FromParts(c, parts)
	if d.Rows() != 9 || d.Cols != 3 {
		t.Fatalf("shape %dx%d", d.Rows(), d.Cols)
	}
	if c.BytesSent != 0 {
		t.Fatal("FromParts must not charge a scatter")
	}
}

// Scaling property (the heart of Figures 3–4): the same Gram computation on
// more nodes takes less virtual time, as long as the matrix is large enough
// that compute dominates communication.
func TestGramVirtualTimeScales(t *testing.T) {
	m := randMatrix(1200, 200, 77) // large enough that compute dwarfs timing noise
	times := map[int]float64{}
	for _, nodes := range []int{1, 2, 4} {
		// Min of three runs: wall-clock measurement on a shared single core
		// is noisy and min is the robust comparison estimator.
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			c := cluster.New(cluster.DefaultConfig(nodes))
			d := Distribute(c, m)
			c.Reset() // exclude scatter, as load time is excluded in the paper
			if _, err := d.Gram(); err != nil {
				t.Fatal(err)
			}
			if s := c.MakespanSeconds(); s < best {
				best = s
			}
		}
		times[nodes] = best
	}
	// Both multi-node runs must beat single node. (t4 vs t2 is left
	// unconstrained: with per-node work this small their gap can be inside
	// scheduler noise on a busy single-core machine.)
	if !(times[4] < times[1] && times[2] < times[1]) {
		t.Fatalf("no speedup: %v", times)
	}
	// Sub-linear: 4 nodes must not be 4× faster (communication overhead).
	if times[1]/times[4] >= 4 {
		t.Fatalf("scaling suspiciously ideal: %v", times)
	}
}

func TestShardOwnersContiguousAndComplete(t *testing.T) {
	cases := []struct{ shards, nodes int }{
		{4, 1}, {4, 2}, {4, 3}, {4, 4}, {4, 8}, {7, 3}, {48, 48}, {2, 5},
	}
	for _, c := range cases {
		owners := ShardOwners(c.shards, c.nodes)
		if len(owners) != c.shards {
			t.Fatalf("%v: %d owners", c, len(owners))
		}
		for i := 1; i < len(owners); i++ {
			if owners[i] < owners[i-1] {
				t.Fatalf("%v: owners not monotonic: %v", c, owners)
			}
		}
		for _, o := range owners {
			if o < 0 || o >= c.nodes {
				t.Fatalf("%v: owner %d out of range", c, o)
			}
		}
		if c.shards >= c.nodes && len(owners) > 0 && owners[len(owners)-1] != c.nodes-1 {
			t.Fatalf("%v: last node idle with enough shards: %v", c, owners)
		}
	}
}

func TestSplitIDsByBlock(t *testing.T) {
	starts := []int{0, 3, 5, 5, 9}
	ids := []int64{0, 2, 3, 6, 8}
	got := SplitIDsByBlock(starts, ids)
	want := [][]int64{{0, 2}, {3}, {}, {6, 8}}
	if len(got) != len(want) {
		t.Fatalf("%d blocks", len(got))
	}
	for s := range want {
		if len(got[s]) != len(want[s]) {
			t.Fatalf("block %d: %v want %v", s, got[s], want[s])
		}
		for i := range want[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("block %d: %v want %v", s, got[s], want[s])
			}
		}
	}
}

// The shard partition — not the node count — determines the numerics: the
// same matrix reduced on 1, 2, 3 and 8 nodes yields bitwise-identical Gram,
// covariance, column-sum and least-squares results, because per-shard
// partials combine in shard order regardless of placement.
func TestReductionsInvariantToNodeCount(t *testing.T) {
	m := randMatrix(57, 9, 13)
	y := randMatrix(57, 1, 14).Col(0)
	type snap struct {
		gram, cov *linalg.Matrix
		sums      []float64
		beta      []float64
	}
	var ref snap
	for _, nodes := range []int{1, 2, 3, 8} {
		c := cluster.New(cluster.DefaultConfig(nodes))
		d := Distribute(c, m)
		gram, err := d.Gram()
		if err != nil {
			t.Fatal(err)
		}
		cov, err := d.Covariance()
		if err != nil {
			t.Fatal(err)
		}
		sums, err := d.ColumnSums()
		if err != nil {
			t.Fatal(err)
		}
		ls, err := d.LeastSquares(y)
		if err != nil {
			t.Fatal(err)
		}
		if nodes == 1 {
			ref = snap{gram, cov, sums, ls.Coefficients}
			continue
		}
		if linalg.MaxAbsDiff(gram, ref.gram) != 0 || linalg.MaxAbsDiff(cov, ref.cov) != 0 {
			t.Fatalf("%d nodes: matrix reduction diverges bitwise", nodes)
		}
		for j := range sums {
			if sums[j] != ref.sums[j] {
				t.Fatalf("%d nodes: column sum %d diverges bitwise", nodes, j)
			}
		}
		for j := range ls.Coefficients {
			if ls.Coefficients[j] != ref.beta[j] {
				t.Fatalf("%d nodes: coefficient %d diverges bitwise", nodes, j)
			}
		}
	}
}
