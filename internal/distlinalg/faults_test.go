package distlinalg

// Fault-path tests for the replicated shard scheduler (DESIGN.md §14):
// replica placement, crash failover, deterministic straggler hedging, typed
// exhaustion, and the data path (Gather) surviving node loss.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
	"github.com/genbase/genbase/internal/linalg"
)

func faultyCluster(nodes, replication int, p *faults.Plan) *cluster.Cluster {
	cfg := cluster.DefaultConfig(nodes)
	cfg.Injector = p
	cfg.ReplicationFactor = replication
	return cluster.New(cfg)
}

// runCounting drives RunShards with a shard-execution counter and returns
// the per-shard counts.
func runCounting(t *testing.T, c *cluster.Cluster, replicas [][]int) ([]int, error) {
	t.Helper()
	counts := make([]int, len(replicas))
	var mu sync.Mutex
	err := RunShards(context.Background(), c, replicas, func(s int) error {
		mu.Lock()
		counts[s]++
		mu.Unlock()
		return nil
	})
	return counts, err
}

func TestFaultReplicaPlacementRing(t *testing.T) {
	for _, tc := range []struct{ shards, nodes, factor int }{
		{4, 4, 2}, {4, 2, 2}, {4, 3, 3}, {5, 4, 2}, {4, 4, 99}, {4, 4, 0},
	} {
		replicas := ReplicaPlacement(tc.shards, tc.nodes, tc.factor)
		owners := ShardOwners(tc.shards, tc.nodes)
		want := tc.factor
		if want < 1 {
			want = 1
		}
		if want > tc.nodes {
			want = tc.nodes
		}
		for s, reps := range replicas {
			if len(reps) != want {
				t.Fatalf("%+v: shard %d has %d replicas, want %d", tc, s, len(reps), want)
			}
			if reps[0] != owners[s] {
				t.Fatalf("%+v: shard %d primary %d != owner %d", tc, s, reps[0], owners[s])
			}
			seen := map[int]bool{}
			for i, n := range reps {
				if n != (owners[s]+i)%tc.nodes {
					t.Fatalf("%+v: shard %d replica %d = node %d, want successor ring", tc, s, i, n)
				}
				if seen[n] {
					t.Fatalf("%+v: shard %d places two copies on node %d", tc, s, n)
				}
				seen[n] = true
			}
		}
	}
}

func TestFaultRunShardsFailsOverCrashedPrimary(t *testing.T) {
	c := faultyCluster(2, 2, faults.New().Crash(0, 0))
	replicas := ReplicaPlacement(4, 2, 2) // shards 0,1 primary node 0; 2,3 node 1
	counts, err := runCounting(t, c, replicas)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	for s, n := range counts {
		if n != 1 {
			t.Fatalf("shard %d ran %d times, want exactly 1 (crashed attempts never run fn)", s, n)
		}
	}
	if got := c.Failovers.Load(); got != 2 {
		t.Fatalf("Failovers = %d, want 2 (one per shard re-homed off node 0)", got)
	}
	if !c.Degraded() {
		t.Fatal("a failed-over run must report Degraded")
	}
}

func TestFaultRunShardsHedgesStraggler(t *testing.T) {
	// Node 0 runs at 8× ≥ the default hedge threshold of 4: its shards are
	// re-routed to the healthy replica before dispatch, deterministically.
	c := faultyCluster(2, 2, faults.New().Slow(0, 8))
	replicas := ReplicaPlacement(4, 2, 2)
	counts, err := runCounting(t, c, replicas)
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	for s, n := range counts {
		if n != 1 {
			t.Fatalf("shard %d ran %d times, want 1 (hedging re-routes, never duplicates)", s, n)
		}
	}
	if got := c.Hedges.Load(); got != 2 {
		t.Fatalf("Hedges = %d, want 2 (both of the straggler's shards)", got)
	}
	if got := c.Failovers.Load(); got != 0 {
		t.Fatalf("Failovers = %d, want 0 (a hedge is not a failover)", got)
	}
}

func TestFaultRunShardsAllStragglersStillRun(t *testing.T) {
	// With every replica a straggler there is nowhere healthier to hedge to:
	// shards run on their primaries and the query completes, just slowly.
	c := faultyCluster(2, 2, faults.New().Slow(0, 8).Slow(1, 8))
	replicas := ReplicaPlacement(4, 2, 2)
	counts, err := runCounting(t, c, replicas)
	if err != nil {
		t.Fatalf("all-straggler run: %v", err)
	}
	for s, n := range counts {
		if n != 1 {
			t.Fatalf("shard %d ran %d times, want 1", s, n)
		}
	}
	if got := c.Hedges.Load(); got != 0 {
		t.Fatalf("Hedges = %d, want 0 (no healthier replica exists)", got)
	}
}

func TestFaultRunShardsReplicasExhausted(t *testing.T) {
	c := faultyCluster(2, 1, faults.New().Crash(0, 0))
	replicas := ReplicaPlacement(4, 2, 1) // unreplicated: node 0's shards have one copy
	_, err := runCounting(t, c, replicas)
	if !errors.Is(err, engine.ErrReplicasExhausted) {
		t.Fatalf("got %v, want ErrReplicasExhausted without a replica to fail over to", err)
	}
	if !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("aggregate %v must keep the per-attempt crash causes", err)
	}
}

func TestFaultRunShardsGenuineErrorAborts(t *testing.T) {
	boom := errors.New("kernel exploded")
	c := faultyCluster(2, 2, nil)
	replicas := ReplicaPlacement(4, 2, 2)
	err := RunShards(context.Background(), c, replicas, func(s int) error {
		if s == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the genuine compute error", err)
	}
	if errors.Is(err, engine.ErrReplicasExhausted) {
		t.Fatal("a genuine compute error must not be retried into exhaustion")
	}
}

func TestFaultGatherSurvivesNodeLoss(t *testing.T) {
	m := randMatrix(17, 5, 3)
	plan := faults.New().Crash(0, 0)

	// Replicated: node 0's shards are read from their replicas, bit for bit.
	c := faultyCluster(3, 2, plan)
	d := Distribute(c, m)
	if err := c.Exec(0, func() error { return nil }); !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("setup crash: %v", err)
	}
	back, err := d.Gather()
	if err != nil {
		t.Fatalf("replicated gather after node loss: %v", err)
	}
	if linalg.MaxAbsDiff(m, back) != 0 {
		t.Fatal("failover gather changed the data")
	}

	// Unreplicated: the same loss is a typed hard failure.
	c1 := faultyCluster(3, 1, plan)
	d1 := Distribute(c1, m)
	if err := c1.Exec(0, func() error { return nil }); !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("setup crash: %v", err)
	}
	if _, err := d1.Gather(); !errors.Is(err, engine.ErrReplicasExhausted) {
		t.Fatalf("unreplicated gather after node loss: got %v, want ErrReplicasExhausted", err)
	}
}

// Replication must be timing-only: the same reduction with and without
// replicas — and with a crashed primary forcing failover — produces bitwise
// identical numbers (the tentpole's determinism claim at the linalg layer).
func TestFaultReductionsBitwiseInvariantToFailover(t *testing.T) {
	m := randMatrix(33, 6, 9)
	baseline, err := func() (*linalg.Matrix, error) {
		_, d := dist(3, m)
		return d.Gram()
	}()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		plan *faults.Plan
	}{
		{"replicated-healthy", faults.New()},
		{"crash-failover", faults.New().Crash(1, 0)},
		{"straggler-hedge", faults.New().Slow(0, 8)},
		{"flaky-retry", faults.New().Flaky(2, 0)},
	} {
		c := faultyCluster(3, 2, tc.plan)
		d := Distribute(c, m)
		gram, err := d.Gram()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if linalg.MaxAbsDiff(gram, baseline) != 0 {
			t.Fatalf("%s: Gram diverges from the fault-free run", tc.name)
		}
	}
}
