package cluster_test

// Fault-path tests for the virtual cluster (DESIGN.md §14): fail-stop
// crashes, in-place transient retries, the per-exec virtual timeout,
// ExecAll's join-all-errors/cancel-siblings contract, and coordinator
// failover. The external test package lets these use internal/faults as the
// injector, exactly as production callers do.

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
)

func newFaulty(nodes int, p *faults.Plan) *cluster.Cluster {
	cfg := cluster.DefaultConfig(nodes)
	cfg.Injector = p
	return cluster.New(cfg)
}

func TestFaultCrashFailStops(t *testing.T) {
	c := newFaulty(2, faults.New().Crash(0, 1))
	ran := 0
	fn := func() error { ran++; return nil }

	if err := c.Exec(0, fn); err != nil {
		t.Fatalf("step 0 before the crash: %v", err)
	}
	err := c.Exec(0, fn)
	if !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("crash step: got %v, want ErrNodeFailed", err)
	}
	if !c.IsDead(0) {
		t.Fatal("node 0 not marked dead after its crash step")
	}
	// Fail-stop: every later exec fails without running fn.
	if err := c.Exec(0, fn); !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("post-crash exec: got %v, want ErrNodeFailed", err)
	}
	if ran != 1 {
		t.Fatalf("fn ran %d times on the crashed node, want 1", ran)
	}
	// The healthy node is untouched.
	if err := c.Exec(1, fn); err != nil {
		t.Fatalf("healthy node: %v", err)
	}
	if c.LiveNodes() != 1 {
		t.Fatalf("LiveNodes = %d, want 1", c.LiveNodes())
	}
}

func TestFaultTransientRetriedInPlace(t *testing.T) {
	c := newFaulty(1, faults.New().Flaky(0, 0))
	ran := 0
	if err := c.Exec(0, func() error { ran++; return nil }); err != nil {
		t.Fatalf("flaky step not retried: %v", err)
	}
	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1 (the retry after the flaky attempt)", ran)
	}
	if got := c.Retries.Load(); got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
	if !c.Degraded() {
		t.Fatal("a retried run must report Degraded")
	}
	if c.IsDead(0) {
		t.Fatal("transient fault must not fail-stop the node")
	}
}

func TestFaultTransientExhaustsRetries(t *testing.T) {
	// Every step flaky: MaxRetries in-place attempts, then the typed error
	// escapes to the caller (the shard scheduler fails over to a replica).
	p := faults.New()
	for step := 0; step < 8; step++ {
		p.Flaky(0, step)
	}
	c := newFaulty(1, p)
	err := c.Exec(0, func() error { return nil })
	if !errors.Is(err, engine.ErrTransient) {
		t.Fatalf("got %v, want ErrTransient after retries exhausted", err)
	}
	if got := c.Retries.Load(); got != cluster.DefaultMaxRetries {
		t.Fatalf("Retries = %d, want %d", got, cluster.DefaultMaxRetries)
	}
}

func TestFaultExecTimeoutFailStops(t *testing.T) {
	cfg := cluster.DefaultConfig(1)
	cfg.ExecTimeoutSec = 1e-6 // any real sleep exceeds a microsecond of virtual time
	c := cluster.New(cfg)
	err := c.Exec(0, func() error { time.Sleep(2 * time.Millisecond); return nil })
	if !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("got %v, want ErrNodeFailed from the exec timeout", err)
	}
	if !c.IsDead(0) {
		t.Fatal("timed-out node not fail-stopped")
	}
}

// RunNodes must aggregate every node's failure with errors.Join — no node's
// error is silently dropped, on either the serial or the concurrent path.
func TestFaultRunNodesJoinsAllErrors(t *testing.T) {
	errA := errors.New("node 1 exploded")
	errB := errors.New("node 2 exploded")
	c := cluster.New(cluster.DefaultConfig(4))
	err := c.RunNodes(context.Background(), func(_ context.Context, node int) error {
		// Deliberately ignore the shared context: both failures must surface
		// even though the first one cancels it.
		switch node {
		case 1:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregate %v must wrap both node errors", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate %v leaks a sibling cancellation echo", err)
	}
}

// ExecAll's first failure cancels the shared context; siblings that honor it
// stop early instead of running to completion, and their cancellations are
// filtered from the aggregate so callers see the cause, not echoes.
func TestFaultExecAllCancelsSiblings(t *testing.T) {
	boom := errors.New("node 0 exploded")
	timedOut := errors.New("sibling never saw the cancellation")
	c := cluster.New(cluster.DefaultConfig(4))
	err := c.ExecAllCtx(context.Background(), func(ctx context.Context, node int) error {
		if node == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return timedOut
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate %v must wrap the causal error", err)
	}
	if errors.Is(err, timedOut) {
		t.Fatal("a sibling ran to its timeout instead of being cancelled")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate %v leaks sibling cancellation echoes", err)
	}
}

// When the caller's own context is dead, the cancellation is the cause and
// must surface rather than being filtered as an echo.
func TestFaultExecAllParentCancelSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := cluster.New(cluster.DefaultConfig(2))
	err := c.ExecAllCtx(ctx, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled from the dead parent", err)
	}
}

func TestFaultExecCoordinatorFailsOver(t *testing.T) {
	c := newFaulty(3, faults.New().Crash(0, 0))
	ran := 0
	if err := c.ExecCoordinator(func() error { ran++; return nil }); err != nil {
		t.Fatalf("coordinator failover: %v", err)
	}
	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1 (once, on the successor)", ran)
	}
	if got := c.Coordinator(); got != 1 {
		t.Fatalf("Coordinator() = %d after node 0 died, want 1", got)
	}
	if got := c.Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1 (the role move is charged)", got)
	}
}

func TestFaultExecCoordinatorExhausted(t *testing.T) {
	p := faults.New()
	for n := 0; n < 3; n++ {
		p.Crash(n, 0)
	}
	c := newFaulty(3, p)
	err := c.ExecCoordinator(func() error { return nil })
	if !errors.Is(err, engine.ErrReplicasExhausted) {
		t.Fatalf("got %v, want ErrReplicasExhausted with every node dead", err)
	}
	if !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("aggregate %v must keep the per-node crash causes", err)
	}
}

func TestFaultResetClearsFaultState(t *testing.T) {
	c := newFaulty(2, faults.New().Crash(0, 0))
	if err := c.Exec(0, func() error { return nil }); !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("setup crash: %v", err)
	}
	c.Reset()
	if c.IsDead(0) || c.Degraded() {
		t.Fatal("Reset must clear dead nodes and recovery counters")
	}
	// The per-node step counters restart too, so the same plan replays
	// identically on the next query.
	if err := c.Exec(0, func() error { return nil }); !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("replayed crash after Reset: %v", err)
	}
}
