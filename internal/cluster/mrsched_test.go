package cluster

import (
	"context"
	"testing"
	"time"
)

func TestMRSchedulerSpreadsWaves(t *testing.T) {
	c := New(DefaultConfig(4))
	s := &MRScheduler{C: c}
	err := s.RunWave(context.Background(), "hive-x:map", 8, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 tasks of ~1ms over 4 nodes → makespan ≈ 2ms, not 8ms.
	ms := c.MakespanSeconds()
	if ms < 0.0015 || ms > 0.006 {
		t.Fatalf("makespan %v, want ≈2ms", ms)
	}
}

func TestMRSchedulerPhaseAttribution(t *testing.T) {
	c := New(DefaultConfig(2))
	s := &MRScheduler{C: c}
	s.ResetAccounting()
	ctx := context.Background()
	if err := s.RunWave(ctx, "hive-join:map", 2, func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunWave(ctx, "mahout-gram:map", 2, func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s.DMSeconds <= 0 || s.AnalyticsSeconds <= 0 {
		t.Fatalf("attribution missing: dm=%v analytics=%v", s.DMSeconds, s.AnalyticsSeconds)
	}
	total := c.MakespanSeconds()
	if diff := s.DMSeconds + s.AnalyticsSeconds - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phases (%v) don't sum to makespan (%v)", s.DMSeconds+s.AnalyticsSeconds, total)
	}
}

func TestMRSchedulerShuffleChargesNetwork(t *testing.T) {
	c := New(DefaultConfig(2))
	s := &MRScheduler{C: c}
	// Pretend a map wave ran so placement is known.
	if err := s.RunWave(context.Background(), "hive-x:map", 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s.ShuffleCost([][]int64{
		{0, 1 << 20}, // mapper 0 (node 0) → reducer 1 (node 1)
		{1 << 20, 0}, // mapper 1 (node 1) → reducer 0 (node 0)
	})
	if c.BytesSent != 2<<20 {
		t.Fatalf("bytes sent %d", c.BytesSent)
	}
	if c.MakespanSeconds() <= 0 {
		t.Fatal("shuffle should advance virtual time")
	}
}

func TestMRSchedulerContextCancel(t *testing.T) {
	c := New(DefaultConfig(2))
	s := &MRScheduler{C: c}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RunWave(ctx, "hive-x:map", 4, func(int) error { return nil }); err == nil {
		t.Fatal("expected cancellation")
	}
}

func TestMRSchedulerResetAccounting(t *testing.T) {
	c := New(DefaultConfig(1))
	s := &MRScheduler{C: c}
	s.RunWave(context.Background(), "mahout-x:map", 1, func(int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	s.ResetAccounting()
	if s.DMSeconds != 0 || s.AnalyticsSeconds != 0 {
		t.Fatal("reset incomplete")
	}
}
