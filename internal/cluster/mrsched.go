package cluster

import (
	"context"
	"strings"
	"time"
)

// MRScheduler places MapReduce waves onto the virtual cluster: task i of a
// wave runs on node i mod N, waves end with a barrier, and shuffle traffic
// is charged to the network. It also splits the virtual makespan into
// data-management vs analytics time by job-name prefix ("hive-" jobs are
// DM, "mahout-" jobs analytics) so the multi-node Hadoop configuration can
// report the paper's phase breakdown.
type MRScheduler struct {
	C *Cluster

	// lastTasks remembers each wave's task→node placement so ShuffleCost can
	// route mapper→reducer traffic over the same nodes.
	lastMapNodes []int

	DMSeconds        float64
	AnalyticsSeconds float64
	lastSnapshot     float64
}

// RunWave implements mapreduce.TaskScheduler.
func (s *MRScheduler) RunWave(ctx context.Context, phase string, n int, task func(i int) error) error {
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = i % s.C.Nodes()
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		node := nodes[i]
		start := time.Now()
		if err := task(i); err != nil {
			return err
		}
		s.C.Charge(node, time.Since(start).Seconds())
	}
	if strings.HasSuffix(phase, ":map") {
		s.lastMapNodes = nodes
	}
	s.C.Barrier()
	s.account(phase)
	return nil
}

// ShuffleCost implements mapreduce.TaskScheduler: bytes[m][r] moves from
// mapper m's node to reducer r's node.
func (s *MRScheduler) ShuffleCost(bytes [][]int64) {
	for m := range bytes {
		src := m % s.C.Nodes()
		if s.lastMapNodes != nil && m < len(s.lastMapNodes) {
			src = s.lastMapNodes[m]
		}
		for r, b := range bytes[m] {
			dst := r % s.C.Nodes()
			if b > 0 {
				s.C.Send(src, dst, b)
			}
		}
	}
	s.C.Barrier()
}

// account attributes makespan growth since the last snapshot to DM or
// analytics based on the job-name prefix carried in phase.
func (s *MRScheduler) account(phase string) {
	now := s.C.MakespanSeconds()
	delta := now - s.lastSnapshot
	s.lastSnapshot = now
	if strings.HasPrefix(phase, "mahout-") {
		s.AnalyticsSeconds += delta
	} else {
		s.DMSeconds += delta
	}
}

// ResetAccounting zeroes the phase attribution (between queries).
func (s *MRScheduler) ResetAccounting() {
	s.DMSeconds = 0
	s.AnalyticsSeconds = 0
	s.lastSnapshot = s.C.MakespanSeconds()
}
