package cluster

import (
	"errors"
	"testing"
)

func TestExecAllChargesEveryNode(t *testing.T) {
	c := New(DefaultConfig(4))
	seen := make([]int, 4)
	if err := c.ExecAll(func(node int) error {
		seen[node]++
		// A little real work so every clock advances.
		s := 0.0
		for i := 0; i < 1_000; i++ {
			s += float64(i)
		}
		_ = s
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for node, n := range seen {
		if n != 1 {
			t.Fatalf("node %d ran %d times", node, n)
		}
	}
	if c.MakespanSeconds() <= 0 {
		t.Fatal("ExecAll charged no virtual time")
	}
}

func TestExecAllSurfacesError(t *testing.T) {
	c := New(DefaultConfig(3))
	want := errors.New("node 1 broke")
	err := c.ExecAll(func(node int) error {
		if node == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}
