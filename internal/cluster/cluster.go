// Package cluster simulates a multi-node cluster with virtual time. Real
// wall-clock on one host cannot exhibit multi-node speedup; instead, every
// distributed operator executes its real per-partition work (serially on a
// single-core host, concurrently across nodes via ExecAll when the host has
// spare cores) while the simulator charges each measured duration to the
// owning virtual node's clock and charges communication with a
// latency/bandwidth model. Virtual nodes model the paper's one-kernel-at-a-
// time workers, so per-node kernels run with one worker each; host-level
// parallelism comes from running different nodes' work concurrently, which
// shrinks real simulation wall-clock without touching the virtual-time
// calibration. The reported query time is the virtual makespan. This
// preserves exactly what the paper's Figures 3–4 measure:
// per-node compute shrinks as nodes are added, communication and
// synchronization do not, so scaling is sub-linear and redistribution-heavy
// plans can regress (SciDB's 1→2 node slowdown). See DESIGN.md §3.3.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the cluster size (the paper uses 1, 2, 4).
	Nodes int
	// LatencySec is the per-message latency (default 100 µs).
	LatencySec float64
	// BandwidthBytesPerSec is the per-link bandwidth (default 1 GiB/s).
	BandwidthBytesPerSec float64
	// ComputeRate scales measured compute into virtual seconds: virtual =
	// measured / ComputeRate. 1.0 models the host Xeon; the Xeon Phi
	// configuration uses per-kernel rates instead (see internal/xeonphi).
	ComputeRate float64
}

// DefaultConfig returns the calibration used by the benchmark harness:
// gigabit Ethernet (125 MB/s, 0.5 ms latency), the class of interconnect the
// paper's 2013-era 4-node cluster used.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:                nodes,
		LatencySec:           100e-6,
		BandwidthBytesPerSec: 125e6,
		ComputeRate:          1,
	}
}

// Cluster tracks one virtual clock per node.
type Cluster struct {
	cfg    Config
	clocks []float64 // virtual seconds

	// Stats for tests and the network ablation bench.
	MessagesSent int64
	BytesSent    int64
}

// New creates a cluster with all clocks at zero.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.LatencySec <= 0 {
		cfg.LatencySec = 100e-6
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = 1 << 30
	}
	if cfg.ComputeRate <= 0 {
		cfg.ComputeRate = 1
	}
	return &Cluster{cfg: cfg, clocks: make([]float64, cfg.Nodes)}
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Reset zeroes all clocks and stats (called between queries).
func (c *Cluster) Reset() {
	for i := range c.clocks {
		c.clocks[i] = 0
	}
	c.MessagesSent = 0
	c.BytesSent = 0
}

// Exec runs fn immediately, measures its real duration, and charges it to
// node's virtual clock (scaled by the compute rate).
func (c *Cluster) Exec(node int, fn func() error) error {
	c.checkNode(node)
	start := time.Now()
	err := fn()
	c.clocks[node] += time.Since(start).Seconds() / c.cfg.ComputeRate
	return err
}

// ExecAll runs fn(node) once per node, charging each node's measured
// duration to its own clock. When the host has at least one CPU per node the
// closures run concurrently — real clusters run their nodes in parallel, and
// each closure's wall-clock is still measured individually — otherwise they
// run serially in node order, exactly as before: with fewer cores than nodes
// the goroutines would time-share, inflating each measured duration with
// descheduled time and corrupting the virtual clocks. Both NumCPU (physical
// capacity; GOMAXPROCS can be set above it) and GOMAXPROCS (the scheduler's
// actual limit) must cover the node count. Callers must make the closures
// independent (they write disjoint per-node slots), which also keeps the
// results identical on either path. On error the first failing node (by
// index) wins.
func (c *Cluster) ExecAll(fn func(node int) error) error {
	n := c.cfg.Nodes
	if n == 1 || runtime.NumCPU() < n || runtime.GOMAXPROCS(0) < n {
		for i := 0; i < n; i++ {
			if err := c.Exec(i, func() error { return fn(i) }); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Exec(i, func() error { return fn(i) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Charge adds pre-measured virtual seconds to a node's clock (used by the
// coprocessor model, whose kernels have their own rate).
func (c *Cluster) Charge(node int, seconds float64) {
	c.checkNode(node)
	if seconds > 0 {
		c.clocks[node] += seconds
	}
}

// Send models an asynchronous message of n bytes: the receiver's clock
// advances to no earlier than the send time plus latency plus transmission.
func (c *Cluster) Send(src, dst int, bytes int64) {
	c.checkNode(src)
	c.checkNode(dst)
	if src == dst {
		return
	}
	arrival := c.clocks[src] + c.cfg.LatencySec + float64(bytes)/c.cfg.BandwidthBytesPerSec
	if arrival > c.clocks[dst] {
		c.clocks[dst] = arrival
	}
	c.MessagesSent++
	c.BytesSent += bytes
}

// Barrier synchronizes all nodes: every clock advances to the maximum.
func (c *Cluster) Barrier() {
	max := 0.0
	for _, v := range c.clocks {
		if v > max {
			max = v
		}
	}
	for i := range c.clocks {
		c.clocks[i] = max
	}
}

// Gather models every node sending bytesPerNode to root, then synchronizes
// root to the last arrival.
func (c *Cluster) Gather(root int, bytesPerNode int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Send(i, root, bytesPerNode)
	}
}

// Broadcast models root sending bytes to every other node.
func (c *Cluster) Broadcast(root int, bytes int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Send(root, i, bytes)
	}
}

// AllReduce models a reduce-to-root followed by a broadcast, then a barrier
// — the pattern behind every distributed vector sum in pbdR/ScaLAPACK.
func (c *Cluster) AllReduce(bytesPerNode int64) {
	c.Gather(0, bytesPerNode)
	c.Broadcast(0, bytesPerNode)
	c.Barrier()
}

// AllToAll models a full data exchange where every node sends bytesPerPair
// to every other node — SciDB's chunk redistribution into ScaLAPACK's
// block-cyclic layout.
func (c *Cluster) AllToAll(bytesPerPair int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		for j := 0; j < c.cfg.Nodes; j++ {
			c.Send(i, j, bytesPerPair)
		}
	}
	c.Barrier()
}

// MakespanSeconds is the maximum virtual clock — the simulated elapsed time.
func (c *Cluster) MakespanSeconds() float64 {
	max := 0.0
	for _, v := range c.clocks {
		if v > max {
			max = v
		}
	}
	return max
}

// Makespan is MakespanSeconds as a duration.
func (c *Cluster) Makespan() time.Duration {
	return time.Duration(c.MakespanSeconds() * 1e9)
}

// Partition splits n items into per-node contiguous ranges: node i owns
// [starts[i], starts[i+1]).
func (c *Cluster) Partition(n int) []int {
	nodes := c.cfg.Nodes
	starts := make([]int, nodes+1)
	per := n / nodes
	rem := n % nodes
	pos := 0
	for i := 0; i < nodes; i++ {
		starts[i] = pos
		pos += per
		if i < rem {
			pos++
		}
	}
	starts[nodes] = n
	return starts
}

func (c *Cluster) checkNode(n int) {
	if n < 0 || n >= c.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, c.cfg.Nodes))
	}
}
