// Package cluster simulates a multi-node cluster with virtual time. Real
// wall-clock on one host cannot exhibit multi-node speedup; instead, every
// distributed operator executes its real per-partition work (serially on a
// single-core host, concurrently across nodes via ExecAll when the host has
// spare cores) while the simulator charges each measured duration to the
// owning virtual node's clock and charges communication with a
// latency/bandwidth model. Virtual nodes model the paper's one-kernel-at-a-
// time workers, so per-node kernels run with one worker each; host-level
// parallelism comes from running different nodes' work concurrently, which
// shrinks real simulation wall-clock without touching the virtual-time
// calibration. The reported query time is the virtual makespan. This
// preserves exactly what the paper's Figures 3–4 measure:
// per-node compute shrinks as nodes are added, communication and
// synchronization do not, so scaling is sub-linear and redistribution-heavy
// plans can regress (SciDB's 1→2 node slowdown). See DESIGN.md §3.3.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/genbase/genbase/internal/engine"
)

// Injector is the fault-injection hook consulted by Exec (DESIGN.md §14). An
// implementation must be a pure function of (node, step) — no wall clock, no
// unseeded randomness — so a fault schedule is fully replayable and the
// injected behavior is deterministic per query. internal/faults provides the
// standard implementation.
type Injector interface {
	// BeforeExec is consulted before a node runs its step-th execution (a
	// 0-based per-node counter). Return nil to proceed. An error wrapping
	// engine.ErrNodeFailed crashes the node (fail-stop: this and every later
	// exec on the node fails without running). An error wrapping
	// engine.ErrTransient fails only this attempt; the cluster retries it in
	// place with virtual backoff.
	BeforeExec(node, step int) error
	// SlowFactor scales the node's measured compute durations (1 = healthy).
	// Factors at or above the hedge threshold mark the node a straggler.
	SlowFactor(node int) float64
}

// Fault-tolerance defaults (virtual seconds). All recovery costs are charged
// to the virtual clocks so fault drills show up in the reported makespans.
const (
	// DefaultMaxRetries bounds in-place retries of a transient exec fault.
	DefaultMaxRetries = 2
	// DefaultRetryBackoffSec is the base virtual backoff charged per retry
	// (doubled each attempt).
	DefaultRetryBackoffSec = 1e-3
	// DefaultFailoverDetectSec is the virtual detection delay charged when a
	// shard fails over to a replica (the heartbeat/timeout a real cluster
	// pays before re-dispatching).
	DefaultFailoverDetectSec = 5e-3
	// DefaultHedgeFactor is the slow-factor threshold at which a node counts
	// as a straggler and its shards are hedged onto replicas.
	DefaultHedgeFactor = 4
	// DefaultHedgeOverheadSec is the virtual cost charged to the straggler
	// for its cancelled speculative attempt when a hedge wins.
	DefaultHedgeOverheadSec = 1e-3
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the cluster size (the paper uses 1, 2, 4).
	Nodes int
	// LatencySec is the per-message latency (default 100 µs).
	LatencySec float64
	// BandwidthBytesPerSec is the per-link bandwidth (default 1 GiB/s).
	BandwidthBytesPerSec float64
	// ComputeRate scales measured compute into virtual seconds: virtual =
	// measured / ComputeRate. 1.0 models the host Xeon; the Xeon Phi
	// configuration uses per-kernel rates instead (see internal/xeonphi).
	ComputeRate float64

	// Injector injects deterministic faults into Exec (nil = fault-free).
	Injector Injector
	// ReplicationFactor is the number of nodes holding a copy of each shard
	// (clamped to [1, Nodes]; default 1 = no replication). The shard
	// scheduler in internal/distlinalg reads it to place replicas and to
	// fail shard work over when an owner dies.
	ReplicationFactor int
	// MaxRetries bounds in-place retries of transient exec faults (default
	// DefaultMaxRetries; negative disables retry).
	MaxRetries int
	// RetryBackoffSec is the base virtual backoff charged per retry,
	// doubling each attempt (default DefaultRetryBackoffSec).
	RetryBackoffSec float64
	// ExecTimeoutSec, when positive, fail-stops a node whose single exec's
	// virtual duration exceeds it — the per-node timeout that turns an
	// extreme straggler into a crash the scheduler can fail over.
	ExecTimeoutSec float64
	// FailoverDetectSec is the virtual detection delay charged on replica
	// failover (default DefaultFailoverDetectSec).
	FailoverDetectSec float64
	// HedgeFactor is the slow-factor threshold for hedging (default
	// DefaultHedgeFactor; <0 disables hedging).
	HedgeFactor float64
	// HedgeOverheadSec is the virtual cost of a cancelled speculative
	// attempt (default DefaultHedgeOverheadSec).
	HedgeOverheadSec float64
}

// DefaultConfig returns the calibration used by the benchmark harness:
// gigabit Ethernet (125 MB/s, 0.5 ms latency), the class of interconnect the
// paper's 2013-era 4-node cluster used.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:                nodes,
		LatencySec:           100e-6,
		BandwidthBytesPerSec: 125e6,
		ComputeRate:          1,
	}
}

// Cluster tracks one virtual clock per node.
type Cluster struct {
	cfg    Config
	clocks []float64 // virtual seconds
	steps  []int     // per-node exec counters (fault-schedule positions)
	dead   []bool    // fail-stopped nodes

	// Stats for tests and the network ablation bench.
	MessagesSent int64
	BytesSent    int64

	// Fault-recovery stats (atomic: nodes run concurrently under ExecAll).
	// Retries counts in-place transient retries, Failovers shard re-executions
	// on a replica after an owner death, Hedges speculative re-routes of a
	// straggler's shard. Any non-zero value marks the run degraded.
	Retries   atomic.Int64
	Failovers atomic.Int64
	Hedges    atomic.Int64
}

// New creates a cluster with all clocks at zero.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.LatencySec <= 0 {
		cfg.LatencySec = 100e-6
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = 1 << 30
	}
	if cfg.ComputeRate <= 0 {
		cfg.ComputeRate = 1
	}
	if cfg.ReplicationFactor < 1 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoffSec <= 0 {
		cfg.RetryBackoffSec = DefaultRetryBackoffSec
	}
	if cfg.FailoverDetectSec <= 0 {
		cfg.FailoverDetectSec = DefaultFailoverDetectSec
	}
	if cfg.HedgeFactor == 0 {
		cfg.HedgeFactor = DefaultHedgeFactor
	}
	if cfg.HedgeOverheadSec <= 0 {
		cfg.HedgeOverheadSec = DefaultHedgeOverheadSec
	}
	return &Cluster{
		cfg:    cfg,
		clocks: make([]float64, cfg.Nodes),
		steps:  make([]int, cfg.Nodes),
		dead:   make([]bool, cfg.Nodes),
	}
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// ReplicationFactor returns the configured shard replication factor
// (clamped to the node count).
func (c *Cluster) ReplicationFactor() int { return c.cfg.ReplicationFactor }

// Reset zeroes all clocks, fault state, and stats (called between queries).
func (c *Cluster) Reset() {
	for i := range c.clocks {
		c.clocks[i] = 0
		c.steps[i] = 0
		c.dead[i] = false
	}
	c.MessagesSent = 0
	c.BytesSent = 0
	c.Retries.Store(0)
	c.Failovers.Store(0)
	c.Hedges.Store(0)
}

// IsDead reports whether a node has fail-stopped. Only the goroutine running
// a node's work writes its slot, and shard routing reads it between waves, so
// the usual ExecAll ownership discipline keeps this race-free.
func (c *Cluster) IsDead(node int) bool {
	c.checkNode(node)
	return c.dead[node]
}

// LiveNodes returns the number of nodes that have not fail-stopped.
func (c *Cluster) LiveNodes() int {
	n := 0
	for _, d := range c.dead {
		if !d {
			n++
		}
	}
	return n
}

// Coordinator returns the lowest-numbered live node — the node that runs
// reductions and answer assembly. When the original coordinator (node 0)
// dies, the role deterministically fails over to the next live node; because
// every reduction combines per-shard partials in shard order, the re-homed
// reduction is bit-for-bit the original (DESIGN.md §14). With every node
// dead it returns 0 (callers fail with ErrNodeFailed on the next Exec).
func (c *Cluster) Coordinator() int {
	for i, d := range c.dead {
		if !d {
			return i
		}
	}
	return 0
}

// NodeSlowFactor returns the injected slow factor for a node (1 when
// fault-free). The shard scheduler consults it to hedge stragglers before
// dispatch — the decision is deterministic because the factor comes from the
// fault plan, not from measured time.
func (c *Cluster) NodeSlowFactor(node int) float64 {
	c.checkNode(node)
	if c.cfg.Injector == nil {
		return 1
	}
	if f := c.cfg.Injector.SlowFactor(node); f > 1 {
		return f
	}
	return 1
}

// HedgeFactor returns the slow-factor threshold at which the shard scheduler
// hedges a node's shards onto replicas (<0 means hedging is disabled).
func (c *Cluster) HedgeFactor() float64 { return c.cfg.HedgeFactor }

// ChargeFailoverDetect charges the virtual failover detection delay to a
// node and counts the failover.
func (c *Cluster) ChargeFailoverDetect(node int) {
	c.Charge(node, c.cfg.FailoverDetectSec)
	c.Failovers.Add(1)
}

// ChargeHedge charges the straggler's cancelled speculative attempt and
// counts the hedge. The charge lands on the node the work was re-routed to —
// the straggler may be mid-exec on another goroutine, and the winner's clock
// is the one the recovery cost must not undercut.
func (c *Cluster) ChargeHedge(node int) {
	c.Charge(node, c.cfg.HedgeOverheadSec)
	c.Hedges.Add(1)
}

// Degraded reports whether any fault-recovery mechanism fired since Reset.
func (c *Cluster) Degraded() bool {
	return c.Retries.Load() > 0 || c.Failovers.Load() > 0 || c.Hedges.Load() > 0
}

// Exec runs fn immediately, measures its real duration, and charges it to
// node's virtual clock (scaled by the compute rate and the node's injected
// slow factor). Injected faults are consulted first: a crashed node executes
// nothing and returns engine.ErrNodeFailed; a transient fault is retried in
// place up to MaxRetries times with doubling virtual backoff before it
// escapes.
func (c *Cluster) Exec(node int, fn func() error) error {
	return c.ExecCtx(context.Background(), node, fn)
}

// ExecCtx is Exec honoring a context: a cancelled or expired context fails
// the exec before fn runs (fn itself is synchronous compute and is not
// interrupted mid-flight; callers check the context at operator boundaries).
func (c *Cluster) ExecCtx(ctx context.Context, node int, fn func() error) error {
	c.checkNode(node)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.dead[node] {
			return fmt.Errorf("node %d: %w", node, engine.ErrNodeFailed)
		}
		if inj := c.cfg.Injector; inj != nil {
			step := c.steps[node]
			c.steps[node]++
			if err := inj.BeforeExec(node, step); err != nil {
				if errors.Is(err, engine.ErrNodeFailed) {
					c.dead[node] = true
					return fmt.Errorf("node %d step %d: %w", node, step, err)
				}
				if errors.Is(err, engine.ErrTransient) && attempt < c.cfg.MaxRetries {
					// Retry in place: charge the doubling virtual backoff so
					// the recovery shows up in the makespan.
					c.clocks[node] += c.cfg.RetryBackoffSec * float64(int64(1)<<attempt)
					c.Retries.Add(1)
					continue
				}
				return fmt.Errorf("node %d step %d: %w", node, step, err)
			}
		}
		start := time.Now()
		err := fn()
		d := time.Since(start).Seconds() / c.cfg.ComputeRate
		d *= c.NodeSlowFactor(node)
		c.clocks[node] += d
		if err == nil && c.cfg.ExecTimeoutSec > 0 && d > c.cfg.ExecTimeoutSec {
			// The per-node exec timeout: an extreme straggler is declared
			// failed so its shards can re-run on replicas.
			c.dead[node] = true
			return fmt.Errorf("node %d: exec exceeded %.3fs virtual timeout: %w",
				node, c.cfg.ExecTimeoutSec, engine.ErrNodeFailed)
		}
		return err
	}
}

// ExecCoordinator runs fn on the current coordinator (the lowest live node),
// failing the role over down the live nodes if the coordinator dies at this
// very step. With every node dead it returns engine.ErrReplicasExhausted
// wrapping the per-node failures.
func (c *Cluster) ExecCoordinator(fn func() error) error {
	var attempts []error
	for i := 0; i < c.cfg.Nodes; i++ {
		if c.dead[i] {
			continue
		}
		if len(attempts) > 0 {
			// The role moved because the previous coordinator died at this
			// very step: charge the detection delay to its successor.
			c.ChargeFailoverDetect(i)
		}
		err := c.Exec(i, fn)
		if err == nil || !errors.Is(err, engine.ErrNodeFailed) {
			return err
		}
		attempts = append(attempts, err)
	}
	return fmt.Errorf("coordinator: %w", errors.Join(append(attempts, engine.ErrReplicasExhausted)...))
}

// ExecAll runs fn(node) once per node, charging each node's measured
// duration to its own clock. See ExecAllCtx for the scheduling and error
// semantics.
func (c *Cluster) ExecAll(fn func(node int) error) error {
	return c.ExecAllCtx(context.Background(), func(_ context.Context, node int) error {
		return fn(node)
	})
}

// ExecAllCtx runs fn(ctx, node) once per node. When the host has at least
// one CPU per node the closures run concurrently — real clusters run their
// nodes in parallel, and each closure's wall-clock is still measured
// individually — otherwise they run serially in node order: with fewer cores
// than nodes the goroutines would time-share, inflating each measured
// duration with descheduled time and corrupting the virtual clocks. Both
// NumCPU (physical capacity; GOMAXPROCS can be set above it) and GOMAXPROCS
// (the scheduler's actual limit) must cover the node count. Callers must
// make the closures independent (they write disjoint per-node slots), which
// also keeps the results identical on either path.
//
// Error semantics: the first failing node cancels the shared context, so
// in-flight siblings that honor it stop early, and every node error is
// aggregated with errors.Join — no node's failure is silently dropped.
// Sibling cancellations themselves are filtered out of the aggregate when a
// real error is present (and the parent context is still live), so callers
// see causes, not echoes.
func (c *Cluster) ExecAllCtx(ctx context.Context, fn func(ctx context.Context, node int) error) error {
	return c.RunNodes(ctx, func(cctx context.Context, i int) error {
		return c.ExecCtx(cctx, i, func() error { return fn(cctx, i) })
	})
}

// RunNodes applies ExecAll's scheduling policy — concurrent when the host
// has a core per node, serial in node order otherwise — and its error
// semantics (first failure cancels the shared context, all errors joined)
// WITHOUT wrapping each node in Exec. Callers that need per-unit fault and
// timing granularity (the shard scheduler) issue their own Exec calls per
// work item inside fn.
func (c *Cluster) RunNodes(ctx context.Context, fn func(ctx context.Context, node int) error) error {
	n := c.cfg.Nodes
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	run := func(i int) {
		errs[i] = fn(cctx, i)
		if errs[i] != nil {
			cancel()
		}
	}
	if n == 1 || runtime.NumCPU() < n || runtime.GOMAXPROCS(0) < n {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	return joinNodeErrors(ctx, errs)
}

// joinNodeErrors aggregates per-node errors, dropping pure sibling
// cancellations when a real cause is present and the parent context is live.
func joinNodeErrors(ctx context.Context, errs []error) error {
	real := false
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			real = true
			break
		}
	}
	var keep []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if real && ctx.Err() == nil && errors.Is(err, context.Canceled) {
			continue
		}
		keep = append(keep, err)
	}
	return errors.Join(keep...)
}

// Charge adds pre-measured virtual seconds to a node's clock (used by the
// coprocessor model, whose kernels have their own rate).
func (c *Cluster) Charge(node int, seconds float64) {
	c.checkNode(node)
	if seconds > 0 {
		c.clocks[node] += seconds
	}
}

// Send models an asynchronous message of n bytes: the receiver's clock
// advances to no earlier than the send time plus latency plus transmission.
func (c *Cluster) Send(src, dst int, bytes int64) {
	c.checkNode(src)
	c.checkNode(dst)
	if src == dst {
		return
	}
	arrival := c.clocks[src] + c.cfg.LatencySec + float64(bytes)/c.cfg.BandwidthBytesPerSec
	if arrival > c.clocks[dst] {
		c.clocks[dst] = arrival
	}
	c.MessagesSent++
	c.BytesSent += bytes
}

// Barrier synchronizes all nodes: every clock advances to the maximum.
func (c *Cluster) Barrier() {
	max := 0.0
	for _, v := range c.clocks {
		if v > max {
			max = v
		}
	}
	for i := range c.clocks {
		c.clocks[i] = max
	}
}

// Gather models every node sending bytesPerNode to root, then synchronizes
// root to the last arrival.
func (c *Cluster) Gather(root int, bytesPerNode int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Send(i, root, bytesPerNode)
	}
}

// Broadcast models root sending bytes to every other node.
func (c *Cluster) Broadcast(root int, bytes int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Send(root, i, bytes)
	}
}

// AllReduce models a reduce-to-root followed by a broadcast, then a barrier
// — the pattern behind every distributed vector sum in pbdR/ScaLAPACK. The
// root is the current coordinator, so the traffic re-homes with the role
// after a coordinator death.
func (c *Cluster) AllReduce(bytesPerNode int64) {
	root := c.Coordinator()
	c.Gather(root, bytesPerNode)
	c.Broadcast(root, bytesPerNode)
	c.Barrier()
}

// AllToAll models a full data exchange where every node sends bytesPerPair
// to every other node — SciDB's chunk redistribution into ScaLAPACK's
// block-cyclic layout.
func (c *Cluster) AllToAll(bytesPerPair int64) {
	for i := 0; i < c.cfg.Nodes; i++ {
		for j := 0; j < c.cfg.Nodes; j++ {
			c.Send(i, j, bytesPerPair)
		}
	}
	c.Barrier()
}

// MakespanSeconds is the maximum virtual clock — the simulated elapsed time.
func (c *Cluster) MakespanSeconds() float64 {
	max := 0.0
	for _, v := range c.clocks {
		if v > max {
			max = v
		}
	}
	return max
}

// Makespan is MakespanSeconds as a duration.
func (c *Cluster) Makespan() time.Duration {
	return time.Duration(c.MakespanSeconds() * 1e9)
}

// Partition splits n items into per-node contiguous ranges: node i owns
// [starts[i], starts[i+1]).
func (c *Cluster) Partition(n int) []int {
	nodes := c.cfg.Nodes
	starts := make([]int, nodes+1)
	per := n / nodes
	rem := n % nodes
	pos := 0
	for i := 0; i < nodes; i++ {
		starts[i] = pos
		pos += per
		if i < rem {
			pos++
		}
	}
	starts[nodes] = n
	return starts
}

func (c *Cluster) checkNode(n int) {
	if n < 0 || n >= c.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, c.cfg.Nodes))
	}
}
