package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestExecChargesOwningNode(t *testing.T) {
	c := New(DefaultConfig(2))
	if err := c.Exec(0, func() error { time.Sleep(2 * time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	if c.clocks[0] <= 0 || c.clocks[1] != 0 {
		t.Fatalf("clocks=%v", c.clocks)
	}
}

func TestParallelWaveMakespanIsMax(t *testing.T) {
	c := New(DefaultConfig(4))
	for i := 0; i < 4; i++ {
		c.Charge(i, float64(i+1))
	}
	c.Barrier()
	if c.MakespanSeconds() != 4 {
		t.Fatalf("makespan=%v", c.MakespanSeconds())
	}
	// After the barrier every clock equals the max.
	for _, v := range c.clocks {
		if v != 4 {
			t.Fatalf("clocks=%v", c.clocks)
		}
	}
}

func TestSendAdvancesReceiver(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.LatencySec = 0.001
	cfg.BandwidthBytesPerSec = 1000
	c := New(cfg)
	c.Charge(0, 1.0)
	c.Send(0, 1, 500) // 0.001 + 0.5 = 0.501 transfer
	want := 1.0 + 0.001 + 0.5
	if diff := c.clocks[1] - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("receiver clock %v want %v", c.clocks[1], want)
	}
	// Sender unaffected (async send).
	if c.clocks[0] != 1.0 {
		t.Fatalf("sender clock %v", c.clocks[0])
	}
}

func TestSendToSelfFree(t *testing.T) {
	c := New(DefaultConfig(2))
	c.Send(0, 0, 1<<30)
	if c.MakespanSeconds() != 0 || c.MessagesSent != 0 {
		t.Fatal("self-send must be free")
	}
}

func TestSendNeverRewindsReceiver(t *testing.T) {
	c := New(DefaultConfig(2))
	c.Charge(1, 10)
	c.Send(0, 1, 8)
	if c.clocks[1] != 10 {
		t.Fatal("receiver clock must not rewind")
	}
}

// Property: makespan is monotone — no operation decreases it.
func TestMakespanMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(DefaultConfig(3))
		prev := 0.0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				c.Charge(int(op)%3, float64(op%7)*0.001)
			case 1:
				c.Send(int(op)%3, int(op/2)%3, int64(op)*100)
			case 2:
				c.Barrier()
			case 3:
				c.AllReduce(int64(op) * 10)
			case 4:
				c.AllToAll(int64(op) * 10)
			}
			now := c.MakespanSeconds()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSynchronizes(t *testing.T) {
	c := New(DefaultConfig(3))
	c.Charge(2, 5)
	c.AllReduce(1024)
	for _, v := range c.clocks {
		if v < 5 {
			t.Fatalf("clocks=%v", c.clocks)
		}
	}
	if c.MessagesSent == 0 {
		t.Fatal("allreduce should send messages")
	}
}

func TestPartitionCoversAll(t *testing.T) {
	f := func(n uint16, nodes uint8) bool {
		c := New(DefaultConfig(int(nodes%7) + 1))
		starts := c.Partition(int(n))
		if starts[0] != 0 || starts[len(starts)-1] != int(n) {
			return false
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				return false
			}
			// Balanced within one item.
			if int(n) >= c.Nodes() {
				size := starts[i] - starts[i-1]
				if size < int(n)/c.Nodes() || size > int(n)/c.Nodes()+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsState(t *testing.T) {
	c := New(DefaultConfig(2))
	c.Charge(0, 3)
	c.Send(0, 1, 100)
	c.Reset()
	if c.MakespanSeconds() != 0 || c.MessagesSent != 0 || c.BytesSent != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestComputeRateScalesCharge(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ComputeRate = 2
	c := New(cfg)
	c.Exec(0, func() error { time.Sleep(4 * time.Millisecond); return nil })
	fast := c.MakespanSeconds()
	c2 := New(DefaultConfig(1))
	c2.Exec(0, func() error { time.Sleep(4 * time.Millisecond); return nil })
	slow := c2.MakespanSeconds()
	if fast >= slow {
		t.Fatalf("rate 2 (%v) should be faster than rate 1 (%v)", fast, slow)
	}
}

func TestMoreNodesShrinkComputeMakespan(t *testing.T) {
	// A fixed amount of divisible work should take less virtual time on more
	// nodes — the core property behind Figure 3.
	work := func(nodes int) float64 {
		c := New(DefaultConfig(nodes))
		total := 80
		starts := c.Partition(total)
		for i := 0; i < nodes; i++ {
			units := starts[i+1] - starts[i]
			c.Charge(i, float64(units)*0.01)
		}
		c.Barrier()
		return c.MakespanSeconds()
	}
	t1, t2, t4 := work(1), work(2), work(4)
	if !(t4 < t2 && t2 < t1) {
		t.Fatalf("scaling broken: %v %v %v", t1, t2, t4)
	}
}
