package faults

import (
	"errors"
	"testing"

	"github.com/genbase/genbase/internal/engine"
)

func TestFaultPlanParseStringRoundtrip(t *testing.T) {
	cases := []string{
		"",
		"crash:1@3",
		"flaky:0@2",
		"slow:2x8",
		"crash:0@0,crash:3@5,flaky:1@0,flaky:1@4,slow:2x2.5",
	}
	for _, spec := range cases {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
		// A second roundtrip through the canonical form is a fixed point.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if p2.String() != p.String() {
			t.Errorf("canonical form not a fixed point: %q vs %q", p2.String(), p.String())
		}
	}
}

func TestFaultPlanParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"boom", "crash:x@1", "crash:1@x", "crash:-1@0", "crash:1@-2",
		"slow:1x0.5", "slow:1x-3", "slow:ax2", "flaky:1", "kill:1@2",
		"crash:999999999@0", "slow:1x1e300", "crash:1@999999999999",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestFaultPlanInjectionSemantics(t *testing.T) {
	p := New().Crash(1, 3).Flaky(0, 2).Slow(2, 8)

	// Crash: fail-stop from the scheduled step onward, nothing before.
	for step := 0; step < 3; step++ {
		if err := p.BeforeExec(1, step); err != nil {
			t.Fatalf("node 1 step %d failed before scheduled crash: %v", step, err)
		}
	}
	for _, step := range []int{3, 4, 100} {
		if err := p.BeforeExec(1, step); !errors.Is(err, engine.ErrNodeFailed) {
			t.Fatalf("node 1 step %d: want ErrNodeFailed, got %v", step, err)
		}
	}

	// Flaky: exactly the listed step fails, transiently.
	if err := p.BeforeExec(0, 2); !errors.Is(err, engine.ErrTransient) {
		t.Fatalf("flaky step: want ErrTransient, got %v", err)
	}
	if err := p.BeforeExec(0, 3); err != nil {
		t.Fatalf("step after flaky must pass (the in-place retry): %v", err)
	}

	// Slow: only the listed node, factor as given.
	if f := p.SlowFactor(2); f != 8 {
		t.Fatalf("slow factor = %v, want 8", f)
	}
	if f := p.SlowFactor(0); f != 1 {
		t.Fatalf("healthy node slow factor = %v, want 1", f)
	}

	// Unlisted nodes are untouched.
	if err := p.BeforeExec(3, 0); err != nil {
		t.Fatalf("unlisted node failed: %v", err)
	}
}

func TestFaultPlanPureFunctionOfNodeStep(t *testing.T) {
	p := New().Crash(0, 1).Flaky(1, 0)
	for i := 0; i < 3; i++ {
		if err := p.BeforeExec(0, 1); !errors.Is(err, engine.ErrNodeFailed) {
			t.Fatalf("repeat consult %d changed the answer: %v", i, err)
		}
		if err := p.BeforeExec(1, 0); !errors.Is(err, engine.ErrTransient) {
			t.Fatalf("repeat consult %d changed the answer: %v", i, err)
		}
		if err := p.BeforeExec(1, 1); err != nil {
			t.Fatalf("repeat consult %d changed the answer: %v", i, err)
		}
	}
}

func TestFaultSeededDeterministic(t *testing.T) {
	a := Seeded(4, 7)
	b := Seeded(4, 7)
	if a.String() != b.String() {
		t.Fatalf("Seeded not deterministic: %q vs %q", a.String(), b.String())
	}
	if a.Empty() {
		t.Fatal("seeded plan is empty")
	}
	if c := Seeded(4, 8); c.String() == a.String() {
		t.Fatalf("different seeds produced identical plans: %q", a.String())
	}
	// The seeded plan roundtrips through its textual form.
	rt, err := Parse(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.String() != a.String() {
		t.Fatalf("seeded plan does not roundtrip: %q vs %q", rt.String(), a.String())
	}
}

func TestFaultNilAndEmptyPlans(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.BeforeExec(0, 0) != nil || nilPlan.SlowFactor(0) != 1 {
		t.Fatal("nil plan must be fault-free")
	}
	if !New().Empty() {
		t.Fatal("New() must be fault-free")
	}
	if New().String() != "" {
		t.Fatal("empty plan must render empty")
	}
}
