package faults

// FuzzFaultPlan feeds arbitrary strings through Parse and, for every spec
// that parses, checks the two properties the fault layer stands on: the
// canonical textual form is a fixed point (Parse ∘ String is the identity),
// and executing the plan on a small replicated cluster is panic-free,
// completing every shard or failing with a typed fault error — never an
// untyped one, never a hang, never a panic (the Parse bounds exist exactly
// so a hostile -faults flag cannot make execution arbitrarily expensive).

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
)

func FuzzFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash:1@3",
		"flaky:0@2",
		"slow:2x8",
		"crash:1@3,flaky:0@2,slow:2x8",
		"crash:0@0,crash:1@0,crash:2@0",
		"slow:3x1e6",
		"flaky:0@0,flaky:0@1,flaky:0@2,flaky:0@3",
		" crash:0@0 , slow:1x4.5 ",
		"crash:1024@1048576",
		Seeded(3, 42).String(),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejected specs are out of scope; Parse must only not panic
		}

		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, got)
		}

		// Execute the plan: 3 nodes, 4 shards, replication 2. The run must
		// terminate without panicking; shards either all complete exactly
		// once or the scheduler fails with a typed fault error.
		cfg := cluster.DefaultConfig(3)
		cfg.Injector = p
		cfg.ReplicationFactor = 2
		c := cluster.New(cfg)
		replicas := distlinalg.ReplicaPlacement(4, 3, 2)
		counts := make([]int, len(replicas))
		var mu sync.Mutex
		err = distlinalg.RunShards(context.Background(), c, replicas, func(s int) error {
			mu.Lock()
			counts[s]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			if !errors.Is(err, engine.ErrReplicasExhausted) &&
				!errors.Is(err, engine.ErrNodeFailed) &&
				!errors.Is(err, engine.ErrTransient) {
				t.Fatalf("plan %q failed with an untyped error: %v", canon, err)
			}
			return
		}
		for s, n := range counts {
			if n != 1 {
				t.Fatalf("plan %q: shard %d ran %d times, want exactly 1", canon, s, n)
			}
		}
	})
}
