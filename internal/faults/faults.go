// Package faults defines deterministic, replayable fault plans for the
// virtual cluster (DESIGN.md §14). A Plan is a pure function of (node, step):
// it names which per-node execution steps crash, which fail transiently, and
// which nodes run slow — no wall clock, no global randomness — so any fault
// drill can be replayed bit for bit from its textual spec, and the injected
// behavior is identical on the serial and concurrent ExecAll paths.
//
// The textual form (the genbase-bench -faults flag) is a comma-separated
// list of directives:
//
//	crash:N@K   node N fail-stops at its K-th exec (0-based; K and later
//	            execs fail without running — fail-stop, no recovery)
//	flaky:N@K   node N's K-th exec fails transiently (the cluster retries
//	            it in place with virtual backoff)
//	slow:NxF    node N's measured compute is scaled by factor F — the
//	            straggler model; F at or above the hedge threshold makes
//	            the shard scheduler hedge the node's shards onto replicas
//
// Example: "crash:1@3,flaky:0@2,slow:2x8".
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/engine"
)

// A Plan is the standard cluster fault injector.
var _ cluster.Injector = (*Plan)(nil)

// Parse bounds: a plan may be arbitrary but not arbitrarily expensive. The
// fuzzer relies on every parsed plan being safe to execute.
const (
	// MaxNode bounds node indices in a plan (far above any drill's cluster).
	MaxNode = 1 << 10
	// MaxStep bounds crash/flaky step positions.
	MaxStep = 1 << 20
	// MaxSlowFactor bounds the straggler slowdown.
	MaxSlowFactor = 1e6
)

// Plan is a deterministic fault schedule. The zero value is fault-free.
// Plans are built (Crash/Flaky/Slow or Parse) before execution begins and
// are read-only afterwards, so one Plan can inject into many concurrent
// queries — BeforeExec and SlowFactor are pure reads.
type Plan struct {
	crashes map[int]int          // node → first failing step (fail-stop)
	flaky   map[int]map[int]bool // node → steps that fail transiently
	slow    map[int]float64      // node → compute slow factor
}

// New returns an empty (fault-free) plan.
func New() *Plan { return &Plan{} }

// Crash schedules node to fail-stop at its step-th exec. Returns p for
// chaining; an existing crash for the node keeps the earlier step.
func (p *Plan) Crash(node, step int) *Plan {
	if p.crashes == nil {
		p.crashes = make(map[int]int)
	}
	if cur, ok := p.crashes[node]; !ok || step < cur {
		p.crashes[node] = step
	}
	return p
}

// Flaky schedules a transient failure of node's step-th exec. The retry runs
// as the next step, so a single Flaky entry fails exactly one attempt.
func (p *Plan) Flaky(node, step int) *Plan {
	if p.flaky == nil {
		p.flaky = make(map[int]map[int]bool)
	}
	if p.flaky[node] == nil {
		p.flaky[node] = make(map[int]bool)
	}
	p.flaky[node][step] = true
	return p
}

// Slow scales node's measured compute by factor (a straggler). Factors at or
// below 1 are ignored.
func (p *Plan) Slow(node int, factor float64) *Plan {
	if factor <= 1 {
		return p
	}
	if p.slow == nil {
		p.slow = make(map[int]float64)
	}
	p.slow[node] = factor
	return p
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.crashes) == 0 && len(p.flaky) == 0 && len(p.slow) == 0)
}

// BeforeExec implements cluster.Injector: a pure function of (node, step).
func (p *Plan) BeforeExec(node, step int) error {
	if p == nil {
		return nil
	}
	if at, ok := p.crashes[node]; ok && step >= at {
		return fmt.Errorf("faults: crash scheduled at step %d: %w", at, engine.ErrNodeFailed)
	}
	if p.flaky[node][step] {
		return fmt.Errorf("faults: flaky step: %w", engine.ErrTransient)
	}
	return nil
}

// SlowFactor implements cluster.Injector.
func (p *Plan) SlowFactor(node int) float64 {
	if p == nil {
		return 1
	}
	if f, ok := p.slow[node]; ok {
		return f
	}
	return 1
}

// String renders the canonical textual form: directives sorted by kind then
// node, so Parse(p.String()) reproduces p exactly.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var parts []string
	for _, n := range sortedKeys(p.crashes) {
		parts = append(parts, fmt.Sprintf("crash:%d@%d", n, p.crashes[n]))
	}
	for _, n := range sortedKeys(p.flaky) {
		for _, s := range sortedKeys(p.flaky[n]) {
			parts = append(parts, fmt.Sprintf("flaky:%d@%d", n, s))
		}
	}
	for _, n := range sortedKeys(p.slow) {
		parts = append(parts, fmt.Sprintf("slow:%dx%s", n,
			strconv.FormatFloat(p.slow[n], 'g', -1, 64)))
	}
	return strings.Join(parts, ",")
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Parse builds a plan from its textual form (see the package comment). An
// empty string is the fault-free plan.
func Parse(s string) (*Plan, error) {
	p := New()
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, d := range strings.Split(s, ",") {
		d = strings.TrimSpace(d)
		kind, rest, ok := strings.Cut(d, ":")
		if !ok {
			return nil, fmt.Errorf("faults: bad directive %q (want kind:spec)", d)
		}
		switch kind {
		case "crash", "flaky":
			nodeStr, stepStr, ok := strings.Cut(rest, "@")
			if !ok {
				return nil, fmt.Errorf("faults: bad %s spec %q (want N@K)", kind, rest)
			}
			node, err := parseBounded(nodeStr, MaxNode, "node")
			if err != nil {
				return nil, fmt.Errorf("faults: %q: %w", d, err)
			}
			step, err := parseBounded(stepStr, MaxStep, "step")
			if err != nil {
				return nil, fmt.Errorf("faults: %q: %w", d, err)
			}
			if kind == "crash" {
				p.Crash(node, step)
			} else {
				p.Flaky(node, step)
			}
		case "slow":
			nodeStr, facStr, ok := strings.Cut(rest, "x")
			if !ok {
				return nil, fmt.Errorf("faults: bad slow spec %q (want NxF)", rest)
			}
			node, err := parseBounded(nodeStr, MaxNode, "node")
			if err != nil {
				return nil, fmt.Errorf("faults: %q: %w", d, err)
			}
			factor, err := strconv.ParseFloat(facStr, 64)
			if err != nil || !(factor > 1) || factor > MaxSlowFactor {
				return nil, fmt.Errorf("faults: %q: slow factor must be in (1, %g]", d, float64(MaxSlowFactor))
			}
			p.Slow(node, factor)
		default:
			return nil, fmt.Errorf("faults: unknown directive kind %q", kind)
		}
	}
	return p, nil
}

func parseBounded(s string, max int, what string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 0 || v > max {
		return 0, fmt.Errorf("%s must be an integer in [0, %d]", what, max)
	}
	return v, nil
}

// Seeded derives a small deterministic fault plan for a cluster of the given
// size from a seed: one crash, one straggler, and one flaky step, spread over
// distinct nodes (when the cluster has enough). The same (nodes, seed) always
// yields the same plan — the replayable "random" drill.
func Seeded(nodes int, seed uint64) *Plan {
	if nodes < 1 {
		nodes = 1
	}
	s := splitmix{seed}
	p := New()
	crashNode := int(s.next() % uint64(nodes))
	p.Crash(crashNode, int(s.next()%4))
	slowNode := int(s.next() % uint64(nodes))
	if nodes > 1 && slowNode == crashNode {
		slowNode = (slowNode + 1) % nodes
	}
	p.Slow(slowNode, float64(4+s.next()%13)) // 4–16×, at or above the hedge threshold
	flakyNode := int(s.next() % uint64(nodes))
	p.Flaky(flakyNode, int(s.next()%4))
	return p
}

// splitmix is SplitMix64 — a tiny seeded generator so Seeded never touches
// global randomness.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
