package colstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// Mode selects how analytics are invoked.
type Mode int

// The paper's configurations 4 and 5.
const (
	// ModeR exports to an external R process through a text COPY stream.
	ModeR Mode = iota
	// ModeUDF calls R as in-database user-defined functions: a cheap binary
	// in-process hand-off — except the biclustering UDF, whose interface
	// re-serializes the matrix through the text path for every extracted
	// bicluster (the paper: "there seem to be some issues with this
	// interface ... such as the biclustering query, in which the column
	// store + UDFs configuration performs significantly worse").
	ModeUDF
)

// Engine is the column-store system under test.
type Engine struct {
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value.
	Workers int

	mode Mode

	micro *Table // geneid, patientid, value — narrow, patient-major
	pats  *Table
	genes *Table
	goTab *Table

	numPatients, numGenes, numTerms int

	// Zero-copy path state (DESIGN.md §10): Load stores the microarray
	// value column patient-major dense, so vals IS the expression matrix in
	// row-major layout. denseVals records that invariant; fns caches the
	// decoded gene-function column the Q2 summary joins against.
	vals      []float64
	denseVals bool
	meta      engine.GeneMeta // funcLookup over the decoded function column, boxed once at Load

	text analytics.Glue
	bin  analytics.Glue
}

// New creates a column-store engine.
func New(mode Mode) *Engine {
	return &Engine{mode: mode, text: analytics.TextGlue{}, bin: analytics.BinaryGlue{}}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.mode == ModeUDF {
		return "colstore-udf"
	}
	return "colstore-r"
}

// Supports implements engine.Engine, derived from the registered physical
// operators (plan.Physical): both column-store configurations implement the
// full operator vocabulary.
func (e *Engine) Supports(q engine.QueryID) bool { return plan.Supports(e.Capabilities(), q) }

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: columns are built once, compressed.
func (e *Engine) Load(ds *datagen.Dataset) error {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	n := p * g
	geneCol := make([]int64, n)
	patCol := make([]int64, n)
	valCol := make([]float64, n)
	k := 0
	for pi := 0; pi < p; pi++ {
		row := ds.Expression.Row(pi)
		for gi, v := range row {
			geneCol[k] = int64(gi)
			patCol[k] = int64(pi) // sorted → RLE compresses to p runs
			valCol[k] = v
			k++
		}
	}
	e.micro = NewTable("microarray", n).AddInt("geneid", geneCol).AddInt("patientid", patCol).AddFloat("value", valCol)
	// The loop above wrote valCol patient-major dense: row pi of the
	// expression matrix is valCol[pi*g : (pi+1)*g]. The zero-copy pivot
	// exploits this; the compressed columns stay authoritative for the
	// general (slow) path.
	e.vals = valCol
	e.denseVals = true

	ids := make([]int64, p)
	ages := make([]int64, p)
	genders := make([]int64, p)
	diseases := make([]int64, p)
	resp := make([]float64, p)
	for i, pt := range ds.Patients {
		ids[i] = int64(pt.ID)
		ages[i] = int64(pt.Age)
		genders[i] = int64(pt.Gender) // 2 distinct values → dict
		diseases[i] = int64(pt.DiseaseID)
		resp[i] = pt.DrugResponse
	}
	e.pats = NewTable("patients", p).AddInt("patientid", ids).AddInt("age", ages).
		AddInt("gender", genders).AddInt("diseaseid", diseases).AddFloat("drugresponse", resp)

	gids := make([]int64, g)
	fns := make([]int64, g)
	for i, gn := range ds.Genes {
		gids[i] = int64(gn.ID)
		fns[i] = int64(gn.Function)
	}
	e.genes = NewTable("genes", g).AddInt("geneid", gids).AddInt("function", fns)

	var goGene, goTerm []int64
	for gi := 0; gi < g; gi++ {
		for t := 0; t < ds.Dims.GOTerms; t++ {
			if ds.GOAt(gi, t) == 1 {
				goGene = append(goGene, int64(gi))
				goTerm = append(goTerm, int64(t))
			}
		}
	}
	e.goTab = NewTable("go", len(goGene)).AddInt("geneid", goGene).AddInt("goid", goTerm)
	e.meta = funcLookup{fns}

	e.numPatients, e.numGenes, e.numTerms = p, g, ds.Dims.GOTerms
	return nil
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this engine's physical operators (ops.go).
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.micro == nil {
		return nil, fmt.Errorf("colstore: not loaded")
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx, e, pl)
}

// glue returns the boundary used for ordinary analytics calls. The text
// COPY stream is the "+ R" configuration's defining cost and is never
// bypassed; the in-process UDF hand-off becomes a true zero-copy hand-off
// when the knob is on (the kernels never mutate their operands).
func (e *Engine) glue() analytics.Glue {
	if e.mode == ModeUDF {
		if engine.ZeroCopyEnabled() {
			return analytics.ZeroCopyGlue{}
		}
		return e.bin
	}
	return e.text
}

// pivotMicro builds the dense matrix for the given patient and gene id sets
// (nil means all) using selection vectors over the compressed microarray
// columns — the column store's late-materialization path.
func (e *Engine) pivotMicro(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	if e.denseVals && engine.ZeroCopyEnabled() {
		// Zero-copy pivot over the patient-major dense value column:
		// identity selections are views, subsets are pooled gathers.
		return engine.PivotDense(ctx, e.vals, e.numPatients, e.numGenes, patientIDs, geneIDs)
	}
	if patientIDs == nil {
		patientIDs = identityIDs(e.numPatients)
	}
	if geneIDs == nil {
		geneIDs = identityIDs(e.numGenes)
	}
	patIdx := make([]int32, e.numPatients)
	for i := range patIdx {
		patIdx[i] = -1
	}
	for i, id := range patientIDs {
		patIdx[id] = int32(i)
	}
	geneIdx := make([]int32, e.numGenes)
	for i := range geneIdx {
		geneIdx[i] = -1
	}
	for i, id := range geneIDs {
		geneIdx[id] = int32(i)
	}

	// Selection on the RLE patientid column: whole patient runs accepted or
	// rejected at run granularity.
	sel := e.micro.Int("patientid").Select(func(v int64) bool { return patIdx[v] >= 0 }, nil)
	if len(geneIDs) < e.numGenes {
		gc := e.micro.Int("geneid")
		sel = gc.SelectRefine(func(v int64) bool { return geneIdx[v] >= 0 }, sel)
	}
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}

	m := linalg.NewMatrix(len(patientIDs), len(geneIDs))
	gc := e.micro.Int("geneid")
	pc := e.micro.Int("patientid")
	vals := e.micro.Float("value")
	for _, i := range sel {
		pi := patIdx[pc.At(int(i))]
		gi := geneIdx[gc.At(int(i))]
		m.Set(int(pi), int(gi), vals[i])
	}
	return m, nil
}

func identityIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }

// biclusterViaUDF drives the Cheng–Church loop through the UDF interface:
// the engine masks found biclusters and re-invokes the UDF, and each
// invocation re-serializes the working matrix through the text boundary.
// Numerically identical to bicluster.Run with the same options.
func (e *Engine) biclusterViaUDF(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	opts := bicluster.Options{MaxBiclusters: maxB, Seed: seed}.WithDefaults(x)
	masker := bicluster.NewMasker(x, opts.Seed)
	work := x.Clone()
	var blocks []bicluster.Bicluster
	for b := 0; b < opts.MaxBiclusters; b++ {
		sw.StartTransfer()
		udfInput, err := e.text.TransferMatrix(ctx, work)
		if err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		bc := bicluster.FindOne(udfInput, opts)
		if bc == nil {
			break
		}
		bc.MSR = bicluster.MSROf(x, bc.Rows, bc.Cols)
		blocks = append(blocks, *bc)
		if len(bc.Rows) == 0 || len(bc.Cols) == 0 {
			break
		}
		masker.Mask(work, bc)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("colstore: no bicluster met the delta threshold")
	}
	return blocks, nil
}
