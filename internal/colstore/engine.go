package colstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// Mode selects how analytics are invoked.
type Mode int

// The paper's configurations 4 and 5.
const (
	// ModeR exports to an external R process through a text COPY stream.
	ModeR Mode = iota
	// ModeUDF calls R as in-database user-defined functions: a cheap binary
	// in-process hand-off — except the biclustering UDF, whose interface
	// re-serializes the matrix through the text path for every extracted
	// bicluster (the paper: "there seem to be some issues with this
	// interface ... such as the biclustering query, in which the column
	// store + UDFs configuration performs significantly worse").
	ModeUDF
)

// Engine is the column-store system under test.
type Engine struct {
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value.
	Workers int

	mode Mode

	micro *Table // geneid, patientid, value — narrow, patient-major
	pats  *Table
	genes *Table
	goTab *Table

	numPatients, numGenes, numTerms int

	// Zero-copy path state (DESIGN.md §10): Load stores the microarray
	// value column patient-major dense, so vals IS the expression matrix in
	// row-major layout. denseVals records that invariant; fns caches the
	// decoded gene-function column the Q2 summary joins against.
	vals      []float64
	denseVals bool
	meta      engine.GeneMeta // funcLookup over the decoded function column, boxed once at Load

	text analytics.Glue
	bin  analytics.Glue
}

// New creates a column-store engine.
func New(mode Mode) *Engine {
	return &Engine{mode: mode, text: analytics.TextGlue{}, bin: analytics.BinaryGlue{}}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.mode == ModeUDF {
		return "colstore-udf"
	}
	return "colstore-r"
}

// Supports implements engine.Engine: both column-store configurations run
// all five queries.
func (e *Engine) Supports(engine.QueryID) bool { return true }

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: columns are built once, compressed.
func (e *Engine) Load(ds *datagen.Dataset) error {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	n := p * g
	geneCol := make([]int64, n)
	patCol := make([]int64, n)
	valCol := make([]float64, n)
	k := 0
	for pi := 0; pi < p; pi++ {
		row := ds.Expression.Row(pi)
		for gi, v := range row {
			geneCol[k] = int64(gi)
			patCol[k] = int64(pi) // sorted → RLE compresses to p runs
			valCol[k] = v
			k++
		}
	}
	e.micro = NewTable("microarray", n).AddInt("geneid", geneCol).AddInt("patientid", patCol).AddFloat("value", valCol)
	// The loop above wrote valCol patient-major dense: row pi of the
	// expression matrix is valCol[pi*g : (pi+1)*g]. The zero-copy pivot
	// exploits this; the compressed columns stay authoritative for the
	// general (slow) path.
	e.vals = valCol
	e.denseVals = true

	ids := make([]int64, p)
	ages := make([]int64, p)
	genders := make([]int64, p)
	diseases := make([]int64, p)
	resp := make([]float64, p)
	for i, pt := range ds.Patients {
		ids[i] = int64(pt.ID)
		ages[i] = int64(pt.Age)
		genders[i] = int64(pt.Gender) // 2 distinct values → dict
		diseases[i] = int64(pt.DiseaseID)
		resp[i] = pt.DrugResponse
	}
	e.pats = NewTable("patients", p).AddInt("patientid", ids).AddInt("age", ages).
		AddInt("gender", genders).AddInt("diseaseid", diseases).AddFloat("drugresponse", resp)

	gids := make([]int64, g)
	fns := make([]int64, g)
	for i, gn := range ds.Genes {
		gids[i] = int64(gn.ID)
		fns[i] = int64(gn.Function)
	}
	e.genes = NewTable("genes", g).AddInt("geneid", gids).AddInt("function", fns)

	var goGene, goTerm []int64
	for gi := 0; gi < g; gi++ {
		for t := 0; t < ds.Dims.GOTerms; t++ {
			if ds.GOAt(gi, t) == 1 {
				goGene = append(goGene, int64(gi))
				goTerm = append(goTerm, int64(t))
			}
		}
	}
	e.goTab = NewTable("go", len(goGene)).AddInt("geneid", goGene).AddInt("goid", goTerm)
	e.meta = funcLookup{fns}

	e.numPatients, e.numGenes, e.numTerms = p, g, ds.Dims.GOTerms
	return nil
}

// Run implements engine.Engine.
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.micro == nil {
		return nil, fmt.Errorf("colstore: not loaded")
	}
	switch q {
	case engine.Q1Regression:
		return e.regression(ctx, p)
	case engine.Q2Covariance:
		return e.covariance(ctx, p)
	case engine.Q3Biclustering:
		return e.biclustering(ctx, p)
	case engine.Q4SVD:
		return e.svd(ctx, p)
	case engine.Q5Statistics:
		return e.statistics(ctx, p)
	default:
		return nil, engine.ErrUnsupported
	}
}

// glue returns the boundary used for ordinary analytics calls. The text
// COPY stream is the "+ R" configuration's defining cost and is never
// bypassed; the in-process UDF hand-off becomes a true zero-copy hand-off
// when the knob is on (the kernels never mutate their operands).
func (e *Engine) glue() analytics.Glue {
	if e.mode == ModeUDF {
		if engine.ZeroCopyEnabled() {
			return analytics.ZeroCopyGlue{}
		}
		return e.bin
	}
	return e.text
}

// selectGeneIDs vectorized-scans gene metadata (function predicate tested
// per dictionary code or run, not per row). Selection vectors and id lists
// are query-local: engine fields would be shared mutable state under
// concurrent queries (DESIGN.md §11), and these are tiny (gene-metadata
// sized, not fact-table sized).
func (e *Engine) selectGeneIDs(thr int64) []int64 {
	sel := e.genes.Int("function").Select(func(v int64) bool { return v < thr }, nil)
	return e.genes.Int("geneid").Gather(sel, nil)
}

// pivotMicro builds the dense matrix for the given patient and gene id sets
// (nil means all) using selection vectors over the compressed microarray
// columns — the column store's late-materialization path.
func (e *Engine) pivotMicro(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	if e.denseVals && engine.ZeroCopyEnabled() {
		// Zero-copy pivot over the patient-major dense value column:
		// identity selections are views, subsets are pooled gathers.
		return engine.PivotDense(ctx, e.vals, e.numPatients, e.numGenes, patientIDs, geneIDs)
	}
	if patientIDs == nil {
		patientIDs = identityIDs(e.numPatients)
	}
	if geneIDs == nil {
		geneIDs = identityIDs(e.numGenes)
	}
	patIdx := make([]int32, e.numPatients)
	for i := range patIdx {
		patIdx[i] = -1
	}
	for i, id := range patientIDs {
		patIdx[id] = int32(i)
	}
	geneIdx := make([]int32, e.numGenes)
	for i := range geneIdx {
		geneIdx[i] = -1
	}
	for i, id := range geneIDs {
		geneIdx[id] = int32(i)
	}

	// Selection on the RLE patientid column: whole patient runs accepted or
	// rejected at run granularity.
	sel := e.micro.Int("patientid").Select(func(v int64) bool { return patIdx[v] >= 0 }, nil)
	if len(geneIDs) < e.numGenes {
		gc := e.micro.Int("geneid")
		sel = gc.SelectRefine(func(v int64) bool { return geneIdx[v] >= 0 }, sel)
	}
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}

	m := linalg.NewMatrix(len(patientIDs), len(geneIDs))
	gc := e.micro.Int("geneid")
	pc := e.micro.Int("patientid")
	vals := e.micro.Float("value")
	for _, i := range sel {
		pi := patIdx[pc.At(int(i))]
		gi := geneIdx[gc.At(int(i))]
		m.Set(int(pi), int(gi), vals[i])
	}
	return m, nil
}

func identityIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }

func (e *Engine) regression(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes := e.selectGeneIDs(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, fmt.Errorf("colstore: no genes pass function < %d", p.FunctionThreshold)
	}
	x, err := e.pivotMicro(ctx, nil, genes)
	if err != nil {
		return nil, err
	}
	pivot := x // storage-side matrix: pooled or a view; released below
	y := e.pats.Float("drugresponse")

	sw.StartTransfer()
	if x, err = e.glue().TransferMatrix(ctx, x); err != nil {
		return nil, err
	}
	if x != pivot {
		linalg.PutMatrix(pivot)
	}
	if y, err = e.glue().TransferVector(ctx, y); err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	xi := linalg.AddInterceptColumn(x)
	linalg.PutMatrix(x)
	fit, err := linalg.LeastSquares(xi, y)
	linalg.PutMatrix(xi)
	if err != nil {
		return nil, err
	}
	sw.Stop()

	sel := make([]int, len(genes))
	for i, g := range genes {
		sel[i] = int(g)
	}
	return &engine.Result{
		Query:  engine.Q1Regression,
		Timing: sw.Timing(),
		Answer: &engine.RegressionAnswer{
			Coefficients:  fit.Coefficients,
			RSquared:      fit.RSquared,
			SelectedGenes: sel,
			NumPatients:   e.numPatients,
		},
	}, nil
}

func (e *Engine) covariance(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	sel := e.pats.Int("diseaseid").Select(func(v int64) bool { return v == p.DiseaseID }, nil)
	pats := e.pats.Int("patientid").Gather(sel, nil)
	if len(pats) < 2 {
		return nil, fmt.Errorf("colstore: fewer than two patients with disease %d", p.DiseaseID)
	}
	x, err := e.pivotMicro(ctx, pats, nil)
	if err != nil {
		return nil, err
	}
	pivot := x

	sw.StartTransfer()
	if x, err = e.glue().TransferMatrix(ctx, x); err != nil {
		return nil, err
	}
	if x != pivot {
		linalg.PutMatrix(pivot)
	}
	sw.StartAnalytics()
	cov := linalg.CovarianceP(x, e.Workers)
	linalg.PutMatrix(x)

	sw.StartDM()
	meta := e.meta
	if !engine.ZeroCopyEnabled() {
		meta = funcLookup{e.genes.Int("function").Materialize()} // the historical decode path
	}
	ans := engine.SummarizeCovariance(cov, p.CovarianceTopFrac, meta, len(pats))
	linalg.PutMatrix(cov)
	sw.Stop()
	return &engine.Result{Query: engine.Q2Covariance, Timing: sw.Timing(), Answer: ans}, nil
}

func (e *Engine) biclustering(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	age := e.pats.Int("age")
	sel := e.pats.Int("gender").Select(func(v int64) bool { return v == int64(p.Gender) }, nil)
	sel = age.SelectRefine(func(v int64) bool { return v < p.MaxAge }, sel)
	pats := e.pats.Int("patientid").Gather(sel, nil)
	if len(pats) < 4 {
		return nil, fmt.Errorf("colstore: only %d patients pass the Q3 filter", len(pats))
	}
	x, err := e.pivotMicro(ctx, pats, nil)
	if err != nil {
		return nil, err
	}
	pivot := x

	var blocks []bicluster.Bicluster
	if e.mode == ModeUDF {
		blocks, err = e.biclusterViaUDF(ctx, &sw, x, p)
	} else {
		sw.StartTransfer()
		if x, err = e.text.TransferMatrix(ctx, x); err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		blocks, err = bicluster.Run(x, bicluster.Options{MaxBiclusters: p.MaxBiclusters, Seed: p.Seed})
	}
	linalg.PutMatrix(pivot)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q3Biclustering,
		Timing: sw.Timing(),
		Answer: engine.BiclusterAnswerFromBlocks(blocks, pats),
	}, nil
}

// biclusterViaUDF drives the Cheng–Church loop through the UDF interface:
// the engine masks found biclusters and re-invokes the UDF, and each
// invocation re-serializes the working matrix through the text boundary.
// Numerically identical to bicluster.Run with the same options.
func (e *Engine) biclusterViaUDF(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, p engine.Params) ([]bicluster.Bicluster, error) {
	opts := bicluster.Options{MaxBiclusters: p.MaxBiclusters, Seed: p.Seed}.WithDefaults(x)
	masker := bicluster.NewMasker(x, opts.Seed)
	work := x.Clone()
	var blocks []bicluster.Bicluster
	for b := 0; b < opts.MaxBiclusters; b++ {
		sw.StartTransfer()
		udfInput, err := e.text.TransferMatrix(ctx, work)
		if err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		bc := bicluster.FindOne(udfInput, opts)
		if bc == nil {
			break
		}
		bc.MSR = bicluster.MSROf(x, bc.Rows, bc.Cols)
		blocks = append(blocks, *bc)
		if len(bc.Rows) == 0 || len(bc.Cols) == 0 {
			break
		}
		masker.Mask(work, bc)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("colstore: no bicluster met the delta threshold")
	}
	return blocks, nil
}

func (e *Engine) svd(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes := e.selectGeneIDs(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, fmt.Errorf("colstore: no genes pass function < %d", p.FunctionThreshold)
	}
	a, err := e.pivotMicro(ctx, nil, genes)
	if err != nil {
		return nil, err
	}
	pivot := a

	sw.StartTransfer()
	if a, err = e.glue().TransferMatrix(ctx, a); err != nil {
		return nil, err
	}
	if a != pivot {
		linalg.PutMatrix(pivot)
	}
	sw.StartAnalytics()
	svd, err := linalg.TopKSVD(a, p.SVDK, linalg.LanczosOptions{Reorthogonalize: true, Seed: p.Seed, Workers: e.Workers})
	linalg.PutMatrix(a)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q4SVD,
		Timing: sw.Timing(),
		Answer: &engine.SVDAnswer{SelectedGenes: len(genes), SingularValues: svd.SingularValues},
	}, nil
}

func (e *Engine) statistics(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	step := int64(p.SamplePatientStep())
	sums := make([]float64, e.numGenes)
	sampled := 0
	for pid := int64(0); pid < int64(e.numPatients); pid += step {
		sampled++
	}
	if e.denseVals && engine.ZeroCopyEnabled() {
		// Zero-copy: stream the sampled patients' contiguous rows straight
		// from the dense value column. Per gene the contributions arrive in
		// ascending patient order, exactly as the selection-vector path
		// accumulates them, so the means are bitwise identical.
		g := e.numGenes
		k := 0
		for pid := 0; pid < e.numPatients; pid += int(step) {
			if k%64 == 0 {
				if err := engine.CheckCtx(ctx); err != nil {
					return nil, err
				}
			}
			k++
			row := e.vals[pid*g : (pid+1)*g]
			for j, v := range row {
				sums[j] += v
			}
		}
		if sampled > 0 {
			for j := range sums {
				sums[j] /= float64(sampled)
			}
		}
	} else {
		sel := e.micro.Int("patientid").Select(func(v int64) bool { return v%step == 0 }, nil)
		gc := e.micro.Int("geneid")
		vals := e.micro.Float("value")
		counts := make([]int64, e.numGenes)
		for _, i := range sel {
			g := gc.At(int(i))
			sums[g] += vals[i]
			counts[g]++
		}
		for j := range sums {
			if counts[j] > 0 {
				sums[j] /= float64(counts[j])
			}
		}
	}
	// Group GO membership by term.
	members := make([][]int32, e.numTerms)
	goGene := e.goTab.Int("geneid")
	goTerm := e.goTab.Int("goid")
	for i := 0; i < e.goTab.Len(); i++ {
		t := goTerm.At(i)
		members[t] = append(members[t], int32(goGene.At(i)))
	}

	means := sums
	var err error
	sw.StartTransfer()
	if means, err = e.glue().TransferVector(ctx, means); err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	ans, err := engine.EnrichmentTest(ctx, means, members, sampled)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{Query: engine.Q5Statistics, Timing: sw.Timing(), Answer: ans}, nil
}
