package colstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// The column store's physical operators (plan.Physical): selections are
// vectorized scans over compressed columns, pivots are zero-copy views or
// pooled gathers over the patient-major dense value column, and the kernel
// boundary is the mode's glue (external R over a text COPY stream, or the
// in-process UDF hand-off).

// Capabilities implements plan.Physical: both column-store configurations
// register every operator.
func (e *Engine) Capabilities() plan.OpSet { return plan.AllOps() }

// Dims implements plan.Physical.
func (e *Engine) Dims() (int, int) { return e.numPatients, e.numGenes }

// SelectIDs implements plan.Physical: the first predicate runs as a
// vectorized select directly on the compressed column — with structured
// predicates pushed to the encoded form (dictionary-code equality, RLE run
// skipping, packed-word range tests; DESIGN.md §15) — later conjuncts
// refine the selection vector, and the surviving positions gather the id
// column. The -compress=false ablation decodes every predicate column and
// filters row by row instead. Selection vectors are query-local
// (DESIGN.md §11).
func (e *Engine) SelectIDs(_ context.Context, table string, preds []plan.Pred) ([]int64, error) {
	var t *Table
	var idCol string
	switch table {
	case plan.TableGenes:
		t, idCol = e.genes, "geneid"
	case plan.TablePatients:
		t, idCol = e.pats, "patientid"
	default:
		return nil, fmt.Errorf("colstore: no physical select over table %q", table)
	}
	var sel []int32
	if !engine.CompressionEnabled() {
		// Decode-then-filter baseline: materialize each predicate column.
		for i, p := range preds {
			vals := t.Int(p.Col).Materialize()
			if i == 0 {
				for j, v := range vals {
					if p.Eval(v) {
						sel = append(sel, int32(j))
					}
				}
				continue
			}
			out := sel[:0]
			for _, j := range sel {
				if p.Eval(vals[j]) {
					out = append(out, j)
				}
			}
			sel = out
		}
		return t.Int(idCol).Gather(sel, nil), nil
	}
	for i, p := range preds {
		cp := pushdownPred(p)
		if i == 0 {
			sel = t.Int(p.Col).SelectPred(cp, nil)
		} else {
			sel = t.Int(p.Col).SelectRefinePred(cp, sel)
		}
	}
	return t.Int(idCol).Gather(sel, nil), nil
}

// pushdownPred translates a planner predicate into the colpage form (both
// carry exactly LT/EQ against an int64).
func pushdownPred(p plan.Pred) colpage.Pred {
	op := colpage.LT
	if p.Op == plan.CmpEQ {
		op = colpage.EQ
	}
	return colpage.Pred{Op: op, Val: p.Val}
}

// ScanFloats implements plan.Physical. The full drug-response projection is
// the decoded column itself (no copy); a cohort subset gathers by patient id
// (ids are positions — Load stores patients in id order).
func (e *Engine) ScanFloats(_ context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != plan.TablePatients || col != plan.ColDrugResponse {
		return nil, fmt.Errorf("colstore: no physical scan for %s.%s", table, col)
	}
	y := e.pats.Float("drugresponse")
	if ids == nil {
		return y, nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = y[id]
	}
	return out, nil
}

// Pivot implements plan.Physical via the late-materialization pivot
// (zero-copy views over the dense value column when the knob is on).
func (e *Engine) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	return e.pivotMicro(ctx, patientIDs, geneIDs)
}

// SampleMeans implements plan.Physical: Q5's fused sample+aggregate, either
// streaming the sampled patients' contiguous rows off the dense value column
// (zero-copy) or filtering the RLE patientid column with a selection vector.
// Per gene the contributions accumulate in ascending patient order on both
// paths, so the means are bitwise identical.
func (e *Engine) SampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	sums := make([]float64, e.numGenes)
	sampled := 0
	for pid := 0; pid < e.numPatients; pid += step {
		sampled++
	}
	if e.denseVals && engine.ZeroCopyEnabled() {
		g := e.numGenes
		k := 0
		for pid := 0; pid < e.numPatients; pid += step {
			if k%64 == 0 {
				if err := engine.CheckCtx(ctx); err != nil {
					return nil, 0, err
				}
			}
			k++
			row := e.vals[pid*g : (pid+1)*g]
			for j, v := range row {
				sums[j] += v
			}
		}
		if sampled > 0 {
			for j := range sums {
				sums[j] /= float64(sampled)
			}
		}
		return sums, sampled, nil
	}
	step64 := int64(step)
	sample := func(v int64) bool { return v%step64 == 0 }
	var sel []int32
	if engine.CompressionEnabled() {
		// Encoded-space sample: the modulus runs once per patientid run
		// (the column is loaded patient-major, so runs are long) and
		// filtered-out rows are never decoded.
		sel = e.micro.Int("patientid").Select(sample, nil)
	} else {
		for i, v := range e.micro.Int("patientid").Materialize() {
			if sample(v) {
				sel = append(sel, int32(i))
			}
		}
	}
	gc := e.micro.Int("geneid")
	vals := e.micro.Float("value")
	counts := make([]int64, e.numGenes)
	for _, i := range sel {
		g := gc.At(int(i))
		sums[g] += vals[i]
		counts[g]++
	}
	for j := range sums {
		if counts[j] > 0 {
			sums[j] /= float64(counts[j])
		}
	}
	return sums, sampled, nil
}

// GOMembers implements plan.Physical: group GO membership by term.
func (e *Engine) GOMembers(_ context.Context) ([][]int32, error) {
	members := make([][]int32, e.numTerms)
	goGene := e.goTab.Int("geneid")
	goTerm := e.goTab.Int("goid")
	for i := 0; i < e.goTab.Len(); i++ {
		t := goTerm.At(i)
		members[t] = append(members[t], int32(goGene.At(i)))
	}
	return members, nil
}

// GeneMeta implements plan.Physical. The zero-copy path serves the
// function-column lookup boxed once at Load; the ablation path re-decodes
// the column (the historical cost).
func (e *Engine) GeneMeta(_ context.Context) (engine.GeneMeta, error) {
	if engine.ZeroCopyEnabled() {
		return e.meta, nil
	}
	return funcLookup{e.genes.Int("function").Materialize()}, nil
}

// RunRegression implements plan.Physical: both operands cross the mode's
// glue boundary (transfer), then the fit runs as a QR least-squares solve.
func (e *Engine) RunRegression(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	x, err := analytics.TransferMatrixTimed(ctx, e.glue(), sw, x)
	if err != nil {
		return nil, 0, err
	}
	if y, err = e.glue().TransferVector(ctx, y); err != nil {
		linalg.PutMatrix(x)
		return nil, 0, err
	}
	sw.StartAnalytics()
	return engine.FitLeastSquares(x, y)
}

// RunCovariance implements plan.Physical.
func (e *Engine) RunCovariance(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	x, err := analytics.TransferMatrixTimed(ctx, e.glue(), sw, x)
	if err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	return engine.CovarianceHost(x, e.Workers), nil
}

// RunSVD implements plan.Physical.
func (e *Engine) RunSVD(ctx context.Context, sw *engine.StopWatch, a *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	a, err := analytics.TransferMatrixTimed(ctx, e.glue(), sw, a)
	if err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	return engine.TopKSingularValues(a, k, seed, e.Workers)
}

// RunBicluster implements plan.Physical. The UDF configuration drives the
// Cheng–Church loop through the UDF interface (re-serializing the working
// matrix per extracted bicluster — the paper's observed pathology); the +R
// configuration ships the matrix once over the text boundary.
func (e *Engine) RunBicluster(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	var blocks []bicluster.Bicluster
	var err error
	if e.mode == ModeUDF {
		blocks, err = e.biclusterViaUDF(ctx, sw, x, maxB, seed)
		linalg.PutMatrix(x)
	} else {
		if x, err = analytics.TransferMatrixTimed(ctx, e.text, sw, x); err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		blocks, err = bicluster.Run(x, bicluster.Options{MaxBiclusters: maxB, Seed: seed})
	}
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// RunStats implements plan.Physical: the means cross the glue boundary,
// then the shared Wilcoxon enrichment runs per term.
func (e *Engine) RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	var err error
	sw.StartTransfer()
	if means, err = e.glue().TransferVector(ctx, means); err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	return engine.EnrichmentTest(ctx, means, members, sampled)
}

// PhysicalName implements plan.Physical.
func (e *Engine) PhysicalName(k plan.OpKind) string {
	glue := "external R (text COPY)"
	if e.mode == ModeUDF {
		glue = "in-process UDF"
	}
	switch k {
	case plan.OpSelectPred:
		if engine.CompressionEnabled() {
			return "encoded-page pushdown (dict-code EQ, run skip, packed-word LT)"
		}
		return "decode-then-filter column scan"
	case plan.OpScanTable:
		return "column projection"
	case plan.OpSamplePatients:
		return "patient-id modulus"
	case plan.OpPivotMicro:
		return "zero-copy dense view / selection-vector pivot"
	case plan.OpKernelRegression, plan.OpKernelCovariance, plan.OpKernelSVD, plan.OpKernelStats:
		return "BLAS-lite kernel via " + glue
	case plan.OpKernelBicluster:
		if e.mode == ModeUDF {
			return "Cheng-Church via per-bicluster UDF re-serialization"
		}
		return "Cheng-Church via " + glue
	case plan.OpTopKByAbs:
		return "shared covariance summary"
	case plan.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
