// Package colstore is the "popular column store" configuration: tables are
// typed column segments with lightweight compression (run-length and
// dictionary encoding), and operators are vectorized over selection vectors
// with late materialization. Like the paper's configurations 4–5 it runs in
// two analytics modes: exporting to an external R (text COPY) or calling R
// through an in-process UDF interface. Float columns are stored as plain
// aligned []float64 and can be handed to the kernels as zero-copy column
// views (FloatView); decoding through Materialize is the slow path kept for
// the compressed integer columns and the -zerocopy=false ablation.
package colstore

import (
	"fmt"

	"github.com/genbase/genbase/internal/linalg"
)

// Encoding names an integer column's physical layout.
type Encoding uint8

// Column encodings.
const (
	EncRaw Encoding = iota
	EncRLE
	EncDict
)

// IntColumn is a compressed immutable int64 column.
type IntColumn struct {
	enc Encoding
	n   int

	raw []int64

	// RLE: runs of identical values.
	runVals []int64
	runEnds []int32 // exclusive prefix ends; runEnds[len-1] == n

	// Dict: small-cardinality values.
	dict  []int64
	codes []uint8
}

// BuildIntColumn picks an encoding automatically: RLE when the data has few
// runs (sorted or grouped columns), dictionary when cardinality ≤ 256,
// otherwise raw.
func BuildIntColumn(vals []int64) *IntColumn {
	n := len(vals)
	c := &IntColumn{n: n}
	if n == 0 {
		c.enc = EncRaw
		return c
	}
	runs := 1
	for i := 1; i < n; i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	if runs <= n/4 {
		c.enc = EncRLE
		c.runVals = make([]int64, 0, runs)
		c.runEnds = make([]int32, 0, runs)
		for i := 0; i < n; {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			c.runVals = append(c.runVals, vals[i])
			c.runEnds = append(c.runEnds, int32(j))
			i = j
		}
		return c
	}
	distinct := make(map[int64]uint8)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			if len(distinct) == 256 {
				distinct = nil
				break
			}
			distinct[v] = uint8(len(distinct))
		}
	}
	if distinct != nil {
		c.enc = EncDict
		c.dict = make([]int64, len(distinct))
		for v, code := range distinct {
			c.dict[code] = v
		}
		c.codes = make([]uint8, n)
		for i, v := range vals {
			c.codes[i] = distinct[v]
		}
		return c
	}
	c.enc = EncRaw
	c.raw = make([]int64, n)
	copy(c.raw, vals)
	return c
}

// Len returns the row count.
func (c *IntColumn) Len() int { return c.n }

// Encoding returns the physical layout chosen at build time.
func (c *IntColumn) Encoding() Encoding { return c.enc }

// At decodes one value (row access; the vectorized paths below are the fast
// ones).
func (c *IntColumn) At(i int) int64 {
	switch c.enc {
	case EncRaw:
		return c.raw[i]
	case EncDict:
		return c.dict[c.codes[i]]
	default:
		// Binary search the run containing i.
		lo, hi := 0, len(c.runEnds)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int32(i) < c.runEnds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return c.runVals[lo]
	}
}

// Select appends to sel the positions where pred holds, operating directly
// on the compressed form (whole runs and dictionary codes are tested once).
func (c *IntColumn) Select(pred func(int64) bool, sel []int32) []int32 {
	switch c.enc {
	case EncRaw:
		for i, v := range c.raw {
			if pred(v) {
				sel = append(sel, int32(i))
			}
		}
	case EncDict:
		match := make([]bool, len(c.dict))
		any := false
		for code, v := range c.dict {
			if pred(v) {
				match[code] = true
				any = true
			}
		}
		if !any {
			return sel
		}
		for i, code := range c.codes {
			if match[code] {
				sel = append(sel, int32(i))
			}
		}
	default:
		start := int32(0)
		for r, v := range c.runVals {
			end := c.runEnds[r]
			if pred(v) {
				for i := start; i < end; i++ {
					sel = append(sel, i)
				}
			}
			start = end
		}
	}
	return sel
}

// SelectRefine keeps only the positions of sel where pred holds (applying a
// conjunct to an existing selection vector).
func (c *IntColumn) SelectRefine(pred func(int64) bool, sel []int32) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if pred(c.At(int(i))) {
			out = append(out, i)
		}
	}
	return out
}

// Gather decodes the values at the selected positions.
func (c *IntColumn) Gather(sel []int32, out []int64) []int64 {
	out = out[:0]
	for _, i := range sel {
		out = append(out, c.At(int(i)))
	}
	return out
}

// Materialize decodes the whole column.
func (c *IntColumn) Materialize() []int64 {
	out := make([]int64, c.n)
	switch c.enc {
	case EncRaw:
		copy(out, c.raw)
	case EncDict:
		for i, code := range c.codes {
			out[i] = c.dict[code]
		}
	default:
		start := int32(0)
		for r, v := range c.runVals {
			for i := start; i < c.runEnds[r]; i++ {
				out[i] = v
			}
			start = c.runEnds[r]
		}
	}
	return out
}

// CompressedBytes approximates the column's storage footprint, for the
// compression ablation bench.
func (c *IntColumn) CompressedBytes() int {
	switch c.enc {
	case EncRaw:
		return 8 * len(c.raw)
	case EncDict:
		return 8*len(c.dict) + len(c.codes)
	default:
		return 12 * len(c.runVals)
	}
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	n    int
	ints map[string]*IntColumn
	flts map[string][]float64
}

// NewTable creates an empty n-row table.
func NewTable(name string, n int) *Table {
	return &Table{Name: name, n: n, ints: map[string]*IntColumn{}, flts: map[string][]float64{}}
}

// Len returns the row count.
func (t *Table) Len() int { return t.n }

// AddInt builds and attaches a compressed integer column.
func (t *Table) AddInt(name string, vals []int64) *Table {
	if len(vals) != t.n {
		panic(fmt.Sprintf("colstore: column %s has %d rows, table has %d", name, len(vals), t.n))
	}
	t.ints[name] = BuildIntColumn(vals)
	return t
}

// AddFloat attaches a float column (stored raw; expression values do not
// compress).
func (t *Table) AddFloat(name string, vals []float64) *Table {
	if len(vals) != t.n {
		panic(fmt.Sprintf("colstore: column %s has %d rows, table has %d", name, len(vals), t.n))
	}
	t.flts[name] = vals
	return t
}

// Int returns a compressed integer column.
func (t *Table) Int(name string) *IntColumn {
	c, ok := t.ints[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no int column %q in %s", name, t.Name))
	}
	return c
}

// Float returns a float column.
func (t *Table) Float(name string) []float64 {
	c, ok := t.flts[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no float column %q in %s", name, t.Name))
	}
	return c
}

// FloatView exposes a float column as an n×1 zero-copy matrix view over the
// column's backing storage — the kernels read it in place, no decode, no
// copy. The view aliases the column: see the ownership rules in
// internal/linalg/view.go.
func (t *Table) FloatView(name string) *linalg.Matrix {
	return linalg.DenseView(t.Float(name), t.n, 1)
}

// GatherFloat gathers a float column through a selection vector.
func GatherFloat(col []float64, sel []int32, out []float64) []float64 {
	out = out[:0]
	for _, i := range sel {
		out = append(out, col[i])
	}
	return out
}
