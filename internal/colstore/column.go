// Package colstore is the "popular column store" configuration: tables are
// typed column segments compressed as internal/colpage pages (run-length,
// dictionary, and bit-packed frame-of-reference encodings), and operators
// are vectorized over selection vectors with late materialization.
// Structured predicates are pushed down to the encoded form (DESIGN.md
// §15); the -compress=false ablation falls back to decode-then-filter.
// Like the paper's configurations 4–5 it runs in two analytics modes:
// exporting to an external R (text COPY) or calling R through an
// in-process UDF interface. Float columns are stored as plain aligned
// []float64 and can be handed to the kernels as zero-copy column views
// (FloatView); decoding through Materialize is the slow path kept for the
// compressed integer columns and the -zerocopy=false ablation.
package colstore

import (
	"fmt"

	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/linalg"
)

// Encoding names an integer column's physical layout (the colpage
// encodings).
type Encoding = colpage.Encoding

// Column encodings.
const (
	EncRaw    = colpage.Raw
	EncRLE    = colpage.RLE
	EncDict   = colpage.Dict
	EncPacked = colpage.Packed
)

// IntColumn is a compressed immutable int64 column: one colpage segment
// spanning the whole table (colstore tables are loaded once and never
// split, so segment == column).
type IntColumn struct {
	page *colpage.IntPage
}

// BuildIntColumn compresses the values, picking the smallest of the
// colpage encodings.
func BuildIntColumn(vals []int64) *IntColumn {
	return &IntColumn{page: colpage.BuildInt(vals)}
}

// Len returns the row count.
func (c *IntColumn) Len() int { return c.page.Len() }

// Encoding returns the physical layout chosen at build time.
func (c *IntColumn) Encoding() Encoding { return c.page.Encoding() }

// At decodes one value (row access; the vectorized paths below are the fast
// ones).
func (c *IntColumn) At(i int) int64 { return c.page.At(i) }

// SelectPred appends to sel the positions where the structured predicate
// holds, evaluated directly on the encoded form — dictionary-code
// equality, RLE run skipping, packed-word range tests.
func (c *IntColumn) SelectPred(pred colpage.Pred, sel []int32) []int32 {
	return c.page.Select(pred, sel)
}

// Select appends to sel the positions where pred holds, operating on the
// compressed form (whole runs and dictionary codes are tested once).
func (c *IntColumn) Select(pred func(int64) bool, sel []int32) []int32 {
	return c.page.SelectFn(pred, sel)
}

// SelectRefine keeps only the positions of sel where pred holds (applying a
// conjunct to an existing selection vector).
func (c *IntColumn) SelectRefine(pred func(int64) bool, sel []int32) []int32 {
	return c.page.Refine(pred, sel)
}

// SelectRefinePred is SelectRefine for a structured predicate, testing
// dictionary entries and run values once.
func (c *IntColumn) SelectRefinePred(pred colpage.Pred, sel []int32) []int32 {
	return c.page.RefinePred(pred, sel)
}

// Gather decodes the values at the selected positions.
func (c *IntColumn) Gather(sel []int32, out []int64) []int64 {
	return c.page.Gather(sel, out[:0])
}

// Materialize decodes the whole column.
func (c *IntColumn) Materialize() []int64 {
	return c.page.AppendTo(make([]int64, 0, c.page.Len()))
}

// CompressedBytes is the column's encoded storage footprint, for the
// compression ablation bench.
func (c *IntColumn) CompressedBytes() int { return c.page.EncodedBytes() }

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	n    int
	ints map[string]*IntColumn
	flts map[string][]float64
}

// NewTable creates an empty n-row table.
func NewTable(name string, n int) *Table {
	return &Table{Name: name, n: n, ints: map[string]*IntColumn{}, flts: map[string][]float64{}}
}

// Len returns the row count.
func (t *Table) Len() int { return t.n }

// AddInt builds and attaches a compressed integer column.
func (t *Table) AddInt(name string, vals []int64) *Table {
	if len(vals) != t.n {
		panic(fmt.Sprintf("colstore: column %s has %d rows, table has %d", name, len(vals), t.n))
	}
	t.ints[name] = BuildIntColumn(vals)
	return t
}

// AddFloat attaches a float column (stored raw; expression values do not
// compress).
func (t *Table) AddFloat(name string, vals []float64) *Table {
	if len(vals) != t.n {
		panic(fmt.Sprintf("colstore: column %s has %d rows, table has %d", name, len(vals), t.n))
	}
	t.flts[name] = vals
	return t
}

// Int returns a compressed integer column.
func (t *Table) Int(name string) *IntColumn {
	c, ok := t.ints[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no int column %q in %s", name, t.Name))
	}
	return c
}

// Float returns a float column.
func (t *Table) Float(name string) []float64 {
	c, ok := t.flts[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no float column %q in %s", name, t.Name))
	}
	return c
}

// FloatView exposes a float column as an n×1 zero-copy matrix view over the
// column's backing storage — the kernels read it in place, no decode, no
// copy. The view aliases the column: see the ownership rules in
// internal/linalg/view.go.
func (t *Table) FloatView(name string) *linalg.Matrix {
	return linalg.DenseView(t.Float(name), t.n, 1)
}

// GatherFloat gathers a float column through a selection vector.
func GatherFloat(col []float64, sel []int32, out []float64) []float64 {
	out = out[:0]
	for _, i := range sel {
		out = append(out, col[i])
	}
	return out
}
