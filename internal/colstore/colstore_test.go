package colstore

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/rengine"
)

func TestBuildIntColumnEncodings(t *testing.T) {
	sorted := make([]int64, 1000)
	for i := range sorted {
		sorted[i] = int64(i / 100) // 10 runs
	}
	if BuildIntColumn(sorted).Encoding() != EncRLE {
		t.Fatal("sorted column should RLE-encode")
	}
	lowCard := make([]int64, 1000)
	for i := range lowCard {
		lowCard[i] = int64(i % 7 * 13)
	}
	if BuildIntColumn(lowCard).Encoding() != EncDict {
		t.Fatal("low-cardinality column should dict-encode")
	}
	narrow := make([]int64, 1000)
	for i := range narrow {
		narrow[i] = int64(i * 2654435761 % 1000003)
	}
	if BuildIntColumn(narrow).Encoding() != EncPacked {
		t.Fatal("narrow-domain column should bit-pack")
	}
	random := make([]int64, 1000)
	for i := range random {
		random[i] = int64(i*2654435761%1000003) << 41 // spread past 32 packed bits
	}
	if BuildIntColumn(random).Encoding() != EncRaw {
		t.Fatal("wide high-cardinality column should stay raw")
	}
}

// Property: every encoding decodes back to the original values.
func TestIntColumnRoundTrip(t *testing.T) {
	f := func(vals []int64, mode uint8) bool {
		// Shape the data to hit different encodings.
		switch mode % 3 {
		case 0: // runs
			for i := range vals {
				vals[i] = vals[i] % 3
			}
		case 1: // low cardinality
			for i := range vals {
				vals[i] = vals[i] % 100
			}
		}
		c := BuildIntColumn(vals)
		if c.Len() != len(vals) {
			return false
		}
		got := c.Materialize()
		for i := range vals {
			if got[i] != vals[i] || c.At(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectMatchesScan(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] = vals[i] % 50
		}
		c := BuildIntColumn(vals)
		pred := func(v int64) bool { return v%3 == 1 }
		sel := c.Select(pred, nil)
		var want []int32
		for i, v := range vals {
			if pred(v) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			return false
		}
		for i := range sel {
			if sel[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRefineConjunction(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	c := BuildIntColumn(vals)
	sel := c.Select(func(v int64) bool { return v > 2 }, nil)
	sel = c.SelectRefine(func(v int64) bool { return v%2 == 0 }, sel)
	want := []int32{3, 5, 7} // values 4, 6, 8
	if len(sel) != len(want) {
		t.Fatalf("sel=%v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel=%v", sel)
		}
	}
}

func TestGatherAndCompressedBytes(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i / 25)
	}
	c := BuildIntColumn(vals)
	got := c.Gather([]int32{0, 30, 99}, nil)
	if got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("gather=%v", got)
	}
	if c.CompressedBytes() >= 800 {
		t.Fatalf("RLE should compress: %d bytes", c.CompressedBytes())
	}
}

func TestGatherFloat(t *testing.T) {
	col := []float64{0, 10, 20, 30}
	got := GatherFloat(col, []int32{3, 1}, nil)
	if got[0] != 30 || got[1] != 10 {
		t.Fatalf("gather=%v", got)
	}
}

// --- engine-level cross-validation against the vanilla-R oracle ---

func testDataset() *datagen.Dataset {
	return datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7})
}

func loadedPair(t *testing.T, mode Mode) (*Engine, *rengine.Engine) {
	t.Helper()
	c := New(mode)
	if err := c.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	r := rengine.New()
	if err := r.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	return c, r
}

func TestNames(t *testing.T) {
	if New(ModeR).Name() != "colstore-r" || New(ModeUDF).Name() != "colstore-udf" {
		t.Fatal("names")
	}
}

func TestAllQueriesMatchReference(t *testing.T) {
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	for _, mode := range []Mode{ModeR, ModeUDF} {
		c, r := loadedPair(t, mode)
		for _, q := range engine.AllQueries() {
			want, err := r.Run(ctx, q, p)
			if err != nil {
				t.Fatalf("reference %v: %v", q, err)
			}
			got, err := c.Run(ctx, q, p)
			if err != nil {
				t.Fatalf("mode %d %v: %v", mode, q, err)
			}
			compareAnswers(t, q, got.Answer, want.Answer)
		}
	}
}

func compareAnswers(t *testing.T, q engine.QueryID, got, want any) {
	t.Helper()
	switch q {
	case engine.Q1Regression:
		g, w := got.(*engine.RegressionAnswer), want.(*engine.RegressionAnswer)
		if len(g.SelectedGenes) != len(w.SelectedGenes) || math.Abs(g.RSquared-w.RSquared) > 1e-9 {
			t.Fatalf("%v: answers differ (R² %v vs %v)", q, g.RSquared, w.RSquared)
		}
	case engine.Q2Covariance:
		g, w := got.(*engine.CovarianceAnswer), want.(*engine.CovarianceAnswer)
		if g.NumPairs != w.NumPairs || math.Abs(g.AbsCovSum-w.AbsCovSum) > 1e-6*(1+w.AbsCovSum) {
			t.Fatalf("%v: %d/%v vs %d/%v", q, g.NumPairs, g.AbsCovSum, w.NumPairs, w.AbsCovSum)
		}
	case engine.Q3Biclustering:
		g, w := got.(*engine.BiclusterAnswer), want.(*engine.BiclusterAnswer)
		if len(g.Blocks) != len(w.Blocks) {
			t.Fatalf("%v: %d blocks vs %d", q, len(g.Blocks), len(w.Blocks))
		}
		for b := range w.Blocks {
			if len(g.Blocks[b].PatientIDs) != len(w.Blocks[b].PatientIDs) ||
				len(g.Blocks[b].GeneIDs) != len(w.Blocks[b].GeneIDs) {
				t.Fatalf("%v: block %d shape differs", q, b)
			}
			for i := range w.Blocks[b].PatientIDs {
				if g.Blocks[b].PatientIDs[i] != w.Blocks[b].PatientIDs[i] {
					t.Fatalf("%v: block %d patients differ", q, b)
				}
			}
		}
	case engine.Q4SVD:
		g, w := got.(*engine.SVDAnswer), want.(*engine.SVDAnswer)
		for i := range w.SingularValues {
			if math.Abs(g.SingularValues[i]-w.SingularValues[i]) > 1e-6*(1+w.SingularValues[0]) {
				t.Fatalf("%v: σ[%d] %v vs %v", q, i, g.SingularValues[i], w.SingularValues[i])
			}
		}
	case engine.Q5Statistics:
		g, w := got.(*engine.StatsAnswer), want.(*engine.StatsAnswer)
		if len(g.Terms) != len(w.Terms) {
			t.Fatalf("%v: term counts differ", q)
		}
		for i := range w.Terms {
			if math.Abs(g.Terms[i].Z-w.Terms[i].Z) > 1e-9 {
				t.Fatalf("%v: term %d z differs", q, i)
			}
		}
	}
}

func TestUDFBiclusterPaysTextTransferRepeatedly(t *testing.T) {
	p := engine.DefaultParams()
	ctx := context.Background()
	udf := New(ModeUDF)
	if err := udf.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	rmode := New(ModeR)
	if err := rmode.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	ru, err := udf.Run(ctx, engine.Q3Biclustering, p)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rmode.Run(ctx, engine.Q3Biclustering, p)
	if err != nil {
		t.Fatal(err)
	}
	// The UDF path serializes once per bicluster; the R path once total. With
	// ≥2 biclusters found the UDF transfer cost must exceed the single-export
	// cost. (Both must still agree on the answer — checked above.)
	blocks := len(ru.Answer.(*engine.BiclusterAnswer).Blocks)
	if blocks >= 2 && ru.Timing.Transfer <= rr.Timing.Transfer {
		t.Fatalf("UDF bicluster transfer %v should exceed single export %v (%d blocks)",
			ru.Timing.Transfer, rr.Timing.Transfer, blocks)
	}
}

func TestUDFRegressionCheaperTransferThanR(t *testing.T) {
	p := engine.DefaultParams()
	ctx := context.Background()
	udf := New(ModeUDF)
	udf.Load(testDataset())
	rmode := New(ModeR)
	rmode.Load(testDataset())
	ru, err := udf.Run(ctx, engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rmode.Run(ctx, engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Timing.Transfer >= rr.Timing.Transfer {
		t.Fatalf("UDF transfer %v should be cheaper than text export %v", ru.Timing.Transfer, rr.Timing.Transfer)
	}
}

func TestFloatViewAliasesColumn(t *testing.T) {
	vals := []float64{1.5, 2.5, 3.5}
	tb := NewTable("t", 3).AddFloat("v", vals)
	v := tb.FloatView("v")
	if v.Rows != 3 || v.Cols != 1 || v.At(2, 0) != 3.5 {
		t.Fatalf("view wrong: %dx%d", v.Rows, v.Cols)
	}
	vals[1] = -9 // zero-copy: the view sees source mutations
	if v.At(1, 0) != -9 {
		t.Fatal("FloatView copied instead of aliasing")
	}
}

func TestPivotDenseFullSelectionIsAView(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ModeUDF)
	if err := e.Load(ds); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := e.pivotMicro(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &m.Data[0] != &e.vals[0] {
		t.Fatal("full pivot must be a zero-copy view over the value column")
	}
	// An identity gene selection (every id, in order) is also served as a
	// view — the shape a predicate that nothing fails produces.
	m2, err := e.pivotMicro(ctx, nil, identityIDs(e.numGenes))
	if err != nil {
		t.Fatal(err)
	}
	if &m2.Data[0] != &e.vals[0] {
		t.Fatal("identity gene selection must be a zero-copy view")
	}
	// A genuine subset must NOT alias storage (it is a pooled gather).
	m3, err := e.pivotMicro(ctx, []int64{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &m3.Data[0] == &e.vals[1*e.numGenes] {
		t.Fatal("subset pivot must not alias the value column")
	}
	linalg.PutMatrix(m3)
}
