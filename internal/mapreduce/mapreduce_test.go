package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/rengine"
)

func TestWordCount(t *testing.T) {
	input := SplitLines([]string{"a b a", "b c", "a"}, 2)
	job := &Job{
		Name:  "wordcount",
		Input: input,
		Map: func(line string, emit func(k, v string)) error {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
			return nil
		},
		Combine:     sumReduce,
		Reduce:      sumReduce,
		NumReducers: 3,
	}
	out, err := Run(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, part := range out {
		for _, line := range part {
			kv := strings.SplitN(line, "\t", 2)
			counts[kv[0]] = kv[1]
		}
	}
	if counts["a"] != "3" || counts["b"] != "2" || counts["c"] != "1" {
		t.Fatalf("counts=%v", counts)
	}
}

// Property: every mapped record reaches exactly one reducer, and reducers
// see all values for their key.
func TestShuffleExactlyOnce(t *testing.T) {
	f := func(n uint8, reducers uint8) bool {
		lines := make([]string, int(n)+1)
		for i := range lines {
			lines[i] = strconv.Itoa(i % 7)
		}
		job := &Job{
			Name:  "identity",
			Input: SplitLines(lines, 3),
			Map: func(line string, emit func(k, v string)) error {
				emit(line, "x")
				return nil
			},
			Reduce: func(key string, values []string, emit func(k, v string)) error {
				emit(key, strconv.Itoa(len(values)))
				return nil
			},
			NumReducers: int(reducers%5) + 1,
		}
		out, err := Run(context.Background(), job, nil)
		if err != nil {
			return false
		}
		total := 0
		seen := map[string]bool{}
		for _, part := range out {
			for _, line := range part {
				kv := strings.SplitN(line, "\t", 2)
				if seen[kv[0]] {
					return false // key must land in exactly one reducer
				}
				seen[kv[0]] = true
				c, _ := strconv.Atoi(kv[1])
				total += c
			}
		}
		return total == len(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReducerKeysSorted(t *testing.T) {
	lines := []string{"9", "3", "7", "1", "5"}
	job := &Job{
		Name:  "sorted",
		Input: SplitLines(lines, 2),
		Map: func(line string, emit func(k, v string)) error {
			emit(pad(line), "1")
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, "1")
			return nil
		},
	}
	out, err := Run(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{}
	for _, line := range out[0] {
		keys = append(keys, strings.SplitN(line, "\t", 2)[0])
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("reducer output not key-sorted: %v", keys)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	job := &Job{
		Name:  "boom",
		Input: [][]string{{"x"}},
		Map: func(string, func(k, v string)) error {
			return fmt.Errorf("boom")
		},
		Reduce: sumReduce,
	}
	if _, err := Run(context.Background(), job, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err=%v", err)
	}
}

func TestContextCancelStopsJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lines := make([]string, 100000)
	for i := range lines {
		lines[i] = "x"
	}
	job := &Job{
		Name:  "cancel",
		Input: SplitLines(lines, 2),
		Map: func(line string, emit func(k, v string)) error {
			emit("k", "1")
			return nil
		},
		Reduce: sumReduce,
	}
	if _, err := Run(ctx, job, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
}

func TestSplitLines(t *testing.T) {
	s := SplitLines([]string{"a", "b", "c", "d", "e"}, 2)
	if len(s) != 2 || len(s[0]) != 3 || len(s[1]) != 2 {
		t.Fatalf("splits=%v", s)
	}
	if len(SplitLines(nil, 3)) != 1 {
		t.Fatal("empty input should give one empty split")
	}
}

func TestPadRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 42, 99999, 1234567890} {
		got, err := parsePadded(pad(strconv.Itoa(n)))
		if err != nil || got != n {
			t.Fatalf("pad round-trip %d → %d (%v)", n, got, err)
		}
	}
	// Padded keys must sort numerically.
	if pad("9") > pad("10") {
		t.Fatal("pad does not preserve numeric order")
	}
}

// --- engine-level cross-validation against the vanilla-R oracle ---

func testDataset() *datagen.Dataset {
	return datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7})
}

func loadedPair(t *testing.T) (*Engine, *rengine.Engine) {
	t.Helper()
	h := New()
	if err := h.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	r := rengine.New()
	if err := r.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	return h, r
}

func TestHadoopLacksBiclustering(t *testing.T) {
	h, _ := loadedPair(t)
	if h.Supports(engine.Q3Biclustering) {
		t.Fatal("Hadoop must not support biclustering")
	}
	if _, err := h.Run(context.Background(), engine.Q3Biclustering, engine.DefaultParams()); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("err=%v", err)
	}
}

func TestRegressionMatchesReference(t *testing.T) {
	h, r := loadedPair(t)
	p := engine.DefaultParams()
	ctx := context.Background()
	want, err := r.Run(ctx, engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Run(ctx, engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	w := want.Answer.(*engine.RegressionAnswer)
	g := got.Answer.(*engine.RegressionAnswer)
	if len(g.SelectedGenes) != len(w.SelectedGenes) {
		t.Fatalf("selected %d vs %d", len(g.SelectedGenes), len(w.SelectedGenes))
	}
	// Normal equations vs QR: answers agree to square-root-of-machine-eps.
	if math.Abs(g.RSquared-w.RSquared) > 1e-6 {
		t.Fatalf("R² %v vs %v", g.RSquared, w.RSquared)
	}
	for i := range w.Coefficients {
		if math.Abs(g.Coefficients[i]-w.Coefficients[i]) > 1e-4*(1+math.Abs(w.Coefficients[i])) {
			t.Fatalf("coef %d: %v vs %v", i, g.Coefficients[i], w.Coefficients[i])
		}
	}
}

func TestCovarianceMatchesReference(t *testing.T) {
	h, r := loadedPair(t)
	p := engine.DefaultParams()
	ctx := context.Background()
	want, err := r.Run(ctx, engine.Q2Covariance, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Run(ctx, engine.Q2Covariance, p)
	if err != nil {
		t.Fatal(err)
	}
	w := want.Answer.(*engine.CovarianceAnswer)
	g := got.Answer.(*engine.CovarianceAnswer)
	// MR summation order differs; allow tiny threshold-boundary wiggle.
	if math.Abs(float64(g.NumPairs-w.NumPairs)) > 2 {
		t.Fatalf("pairs %d vs %d", g.NumPairs, w.NumPairs)
	}
	if math.Abs(g.AbsCovSum-w.AbsCovSum) > 1e-6*(1+w.AbsCovSum) {
		t.Fatalf("covsum %v vs %v", g.AbsCovSum, w.AbsCovSum)
	}
}

func TestSVDMatchesReference(t *testing.T) {
	h, r := loadedPair(t)
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	want, err := r.Run(ctx, engine.Q4SVD, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Run(ctx, engine.Q4SVD, p)
	if err != nil {
		t.Fatal(err)
	}
	w := want.Answer.(*engine.SVDAnswer)
	g := got.Answer.(*engine.SVDAnswer)
	for i := range w.SingularValues {
		if math.Abs(g.SingularValues[i]-w.SingularValues[i]) > 1e-6*(1+w.SingularValues[0]) {
			t.Fatalf("σ[%d] %v vs %v", i, g.SingularValues[i], w.SingularValues[i])
		}
	}
}

func TestStatisticsMatchesReference(t *testing.T) {
	h, r := loadedPair(t)
	p := engine.DefaultParams()
	ctx := context.Background()
	want, err := r.Run(ctx, engine.Q5Statistics, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Run(ctx, engine.Q5Statistics, p)
	if err != nil {
		t.Fatal(err)
	}
	w := want.Answer.(*engine.StatsAnswer)
	g := got.Answer.(*engine.StatsAnswer)
	if len(g.Terms) != len(w.Terms) {
		t.Fatalf("terms %d vs %d", len(g.Terms), len(w.Terms))
	}
	for i := range w.Terms {
		if math.Abs(g.Terms[i].Z-w.Terms[i].Z) > 1e-6 {
			t.Fatalf("term %d z %v vs %v", i, g.Terms[i].Z, w.Terms[i].Z)
		}
	}
}

func TestHadoopSlowerThanReferenceOnAnalytics(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	h, r := loadedPair(t)
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	ref, err := r.Run(ctx, engine.Q4SVD, p)
	if err != nil {
		t.Fatal(err)
	}
	had, err := h.Run(ctx, engine.Q4SVD, p)
	if err != nil {
		t.Fatal(err)
	}
	if had.Timing.Analytics <= ref.Timing.Analytics {
		t.Fatalf("hadoop analytics %v should exceed R %v", had.Timing.Analytics, ref.Timing.Analytics)
	}
}
