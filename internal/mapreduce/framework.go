// Package mapreduce implements the Hadoop configuration: a real (in-process)
// MapReduce framework with map, combine, partition, shuffle-sort, and reduce
// phases, plus the Hive-style relational jobs and Mahout-style matrix jobs
// GenBase needs. Records are text lines and keys/values are strings, exactly
// as in Hadoop streaming — every stage pays parse/format costs, and no
// high-performance linear algebra library is involved. That is the
// architecture whose cost the paper measures ("Hadoop is good at neither
// data management nor analytics").
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/parallel"
)

// KV is one intermediate key/value pair.
type KV struct {
	Key, Value string
}

// Job describes one MapReduce job. Input is pre-split; each split is a slice
// of text lines (an HDFS block). Combine is optional.
type Job struct {
	Name  string
	Input [][]string
	// Map processes one line. Exactly one of Map and MapSplit must be set.
	Map func(line string, emit func(k, v string)) error
	// MapSplit processes a whole split at once — the in-mapper-combining
	// pattern Mahout uses for partial matrix aggregates.
	MapSplit    func(split []string, emit func(k, v string)) error
	Combine     func(key string, values []string, emit func(k, v string)) error
	Reduce      func(key string, values []string, emit func(k, v string)) error
	NumReducers int
}

// TaskScheduler places map and reduce waves. The local scheduler runs tasks
// sequentially; the virtual cluster scheduler (internal/cluster) spreads
// them over simulated nodes and charges shuffle traffic to the network.
type TaskScheduler interface {
	// RunWave executes n independent tasks of one phase.
	RunWave(ctx context.Context, phase string, n int, task func(i int) error) error
	// ShuffleCost is informed of the map→reduce traffic matrix in bytes.
	ShuffleCost(bytes [][]int64)
}

// LocalScheduler runs waves on the local node (single-node Hadoop), fanning
// the wave's tasks across the shared worker pool — a node runs as many
// map/reduce slots as it has cores. Tasks of one wave write disjoint outputs,
// so the fan-out cannot change results. Workers is the slot count (0 = the
// GENBASE_PARALLEL / NumCPU default).
type LocalScheduler struct{ Workers int }

// RunWave implements TaskScheduler. On error the first failing task (by
// index) wins, mirroring the sequential scheduler.
func (s LocalScheduler) RunWave(ctx context.Context, _ string, n int, task func(i int) error) error {
	errs := make([]error, n)
	parallel.For(s.Workers, n, func(i int) {
		if err := engine.CheckCtx(ctx); err != nil {
			errs[i] = err
			return
		}
		errs[i] = task(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ShuffleCost implements TaskScheduler (free on a single node).
func (LocalScheduler) ShuffleCost([][]int64) {}

// Run executes the job and returns each reducer's output lines
// ("key\tvalue"), reducers in index order. The scheduler defaults to local
// execution when nil.
func Run(ctx context.Context, job *Job, sched TaskScheduler) ([][]string, error) {
	if sched == nil {
		sched = LocalScheduler{}
	}
	r := job.NumReducers
	if r <= 0 {
		r = 1
	}
	nMappers := len(job.Input)
	if nMappers == 0 {
		return make([][]string, r), nil
	}

	// Map phase: each mapper partitions its emissions by hash(key) % r.
	mapOut := make([][][]KV, nMappers) // [mapper][reducer][]KV
	err := sched.RunWave(ctx, job.Name+":map", nMappers, func(m int) error {
		buckets := make([][]KV, r)
		emit := func(k, v string) {
			p := partition(k, r)
			buckets[p] = append(buckets[p], KV{k, v})
		}
		switch {
		case job.MapSplit != nil:
			if err := job.MapSplit(job.Input[m], emit); err != nil {
				return fmt.Errorf("mapreduce: %s mapsplit: %w", job.Name, err)
			}
		case job.Map != nil:
			for ln, line := range job.Input[m] {
				if ln%8192 == 0 {
					if err := engine.CheckCtx(ctx); err != nil {
						return err
					}
				}
				if err := job.Map(line, emit); err != nil {
					return fmt.Errorf("mapreduce: %s map: %w", job.Name, err)
				}
			}
		default:
			return fmt.Errorf("mapreduce: %s has no map function", job.Name)
		}
		if job.Combine != nil {
			for p := range buckets {
				combined, err := combineBucket(buckets[p], job.Combine)
				if err != nil {
					return fmt.Errorf("mapreduce: %s combine: %w", job.Name, err)
				}
				buckets[p] = combined
			}
		}
		mapOut[m] = buckets
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Report shuffle traffic (bytes of keys+values crossing mapper→reducer).
	traffic := make([][]int64, nMappers)
	for m := range traffic {
		traffic[m] = make([]int64, r)
		for p := 0; p < r; p++ {
			var b int64
			for _, kv := range mapOut[m][p] {
				b += int64(len(kv.Key) + len(kv.Value) + 2)
			}
			traffic[m][p] = b
		}
	}
	sched.ShuffleCost(traffic)

	// Reduce phase: merge, sort by key, group, reduce.
	out := make([][]string, r)
	err = sched.RunWave(ctx, job.Name+":reduce", r, func(p int) error {
		var all []KV
		for m := 0; m < nMappers; m++ {
			all = append(all, mapOut[m][p]...)
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].Key < all[b].Key })
		var lines []string
		emit := func(k, v string) { lines = append(lines, k+"\t"+v) }
		for i := 0; i < len(all); {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
			j := i
			for j < len(all) && all[j].Key == all[i].Key {
				j++
			}
			values := make([]string, 0, j-i)
			for k := i; k < j; k++ {
				values = append(values, all[k].Value)
			}
			if err := job.Reduce(all[i].Key, values, emit); err != nil {
				return fmt.Errorf("mapreduce: %s reduce: %w", job.Name, err)
			}
			i = j
		}
		out[p] = lines
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func combineBucket(kvs []KV, combine func(string, []string, func(k, v string)) error) ([]KV, error) {
	if len(kvs) == 0 {
		return kvs, nil
	}
	sort.SliceStable(kvs, func(a, b int) bool { return kvs[a].Key < kvs[b].Key })
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, kvs[k].Value)
		}
		if err := combine(kvs[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

func partition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

// SplitLines divides lines into n roughly equal contiguous splits.
func SplitLines(lines []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	if n > len(lines) && len(lines) > 0 {
		n = len(lines)
	}
	out := make([][]string, 0, n)
	if len(lines) == 0 {
		return [][]string{nil}
	}
	per := (len(lines) + n - 1) / n
	for i := 0; i < len(lines); i += per {
		end := i + per
		if end > len(lines) {
			end = len(lines)
		}
		out = append(out, lines[i:end])
	}
	return out
}
