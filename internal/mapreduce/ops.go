package mapreduce

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// Hadoop's physical operators (plan.Physical): data management runs as
// Hive-style MR jobs over the text tables, the pivot as a broadcast map-side
// join reduced into dense row lines, and the analytics kernels as
// Mahout-style MR job chains — no BLAS anywhere, with every intermediate
// matrix materialized back to text between jobs.

// tableFields maps IR column names to comma-separated field positions of
// the text tables (the Hive external-table schemas).
var tableFields = map[string]map[string]int{
	plan.TableGenes: {
		"geneid": 0, "target": 1, "position": 2, "length": 3, plan.ColFunction: 4,
	},
	plan.TablePatients: {
		"patientid": 0, plan.ColAge: 1, plan.ColGender: 2, "zipcode": 3,
		plan.ColDiseaseID: 4, plan.ColDrugResponse: 5,
	},
}

// Capabilities implements plan.Physical. Biclustering is not registered
// ("Hadoop and Postgres + Madlib do not provide sufficient analytics
// functions to run the biclustering query").
func (e *Engine) Capabilities() plan.OpSet {
	return plan.AllOps().Without(plan.OpKernelBicluster)
}

// Dims implements plan.Physical.
func (e *Engine) Dims() (int, int) { return e.numPats, e.numGenes }

// SelectIDs implements plan.Physical: a map-only filter job over the text
// table, reduced to the surviving ids.
func (e *Engine) SelectIDs(ctx context.Context, table string, preds []plan.Pred) ([]int64, error) {
	fields, ok := tableFields[table]
	if !ok {
		return nil, fmt.Errorf("mapreduce: no text table %q", table)
	}
	var lines []string
	switch table {
	case plan.TableGenes:
		lines = e.genes
	case plan.TablePatients:
		lines = e.patients
	}
	cols := make([]int, len(preds))
	for i, p := range preds {
		c, ok := fields[p.Col]
		if !ok {
			return nil, fmt.Errorf("mapreduce: table %s has no column %q", table, p.Col)
		}
		cols[i] = c
	}
	job := &Job{
		Name:  "hive-filter-" + table,
		Input: SplitLines(lines, e.splits()),
		Map: func(line string, emit func(k, v string)) error {
			f := strings.Split(line, ",")
			for i, p := range preds {
				v, err := strconv.ParseInt(f[cols[i]], 10, 64)
				if err != nil {
					return err
				}
				if !p.Eval(v) {
					return nil
				}
			}
			emit(pad(f[0]), "1")
			return nil
		},
		Reduce: func(key string, _ []string, emit func(k, v string)) error {
			emit(key, "1")
			return nil
		},
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, err
	}
	return collectIDs(out)
}

// ScanFloats implements plan.Physical by parsing the patients text table.
func (e *Engine) ScanFloats(_ context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != plan.TablePatients || col != plan.ColDrugResponse {
		return nil, fmt.Errorf("mapreduce: no physical scan for %s.%s", table, col)
	}
	if ids == nil {
		y := make([]float64, e.numPats)
		for _, line := range e.patients {
			f := strings.Split(line, ",")
			id, _ := strconv.Atoi(f[0])
			y[id], _ = strconv.ParseFloat(f[5], 64)
		}
		return y, nil
	}
	pos := make(map[int64]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	y := make([]float64, len(ids))
	for _, line := range e.patients {
		f := strings.Split(line, ",")
		id, _ := strconv.Atoi(f[0])
		if i, ok := pos[int64(id)]; ok {
			y[i], _ = strconv.ParseFloat(f[5], 64)
		}
	}
	return y, nil
}

// Pivot implements plan.Physical via the broadcast join + restructure job.
func (e *Engine) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	if geneIDs == nil {
		geneIDs = allIDs(e.numGenes)
	}
	return e.joinPivotJob(ctx, geneIDs, patientIDs)
}

// SampleMeans implements plan.Physical: filter + aggregate with combiners
// over the microarray text files.
func (e *Engine) SampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	step64 := int64(step)
	job := &Job{
		Name:        "hive-sample-means",
		Input:       e.micro,
		NumReducers: e.splits(),
		Map: func(line string, emit func(k, v string)) error {
			c1 := strings.IndexByte(line, ',')
			c2 := c1 + 1 + strings.IndexByte(line[c1+1:], ',')
			pid, err := strconv.ParseInt(line[c1+1:c2], 10, 64)
			if err != nil {
				return err
			}
			if pid%step64 != 0 {
				return nil
			}
			emit(pad(line[:c1]), line[c2+1:]+":1")
			return nil
		},
		Combine: sumCountReduce,
		Reduce:  sumCountReduce,
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, 0, err
	}
	means := make([]float64, e.numGenes)
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			g, err := parsePadded(line[:tab])
			if err != nil {
				return nil, 0, err
			}
			colon := strings.LastIndexByte(line, ':')
			sum, err := strconv.ParseFloat(line[tab+1:colon], 64)
			if err != nil {
				return nil, 0, err
			}
			cnt, err := strconv.ParseFloat(line[colon+1:], 64)
			if err != nil {
				return nil, 0, err
			}
			means[g] = sum / cnt
		}
	}
	sampled := 0
	for pid := int64(0); pid < int64(e.numPats); pid += step64 {
		sampled++
	}
	return means, sampled, nil
}

// GOMembers implements plan.Physical: GO members grouped by term with a
// reduce-side join shape.
func (e *Engine) GOMembers(ctx context.Context) ([][]int32, error) {
	goJob := &Job{
		Name:        "hive-go-members",
		Input:       e.goLines,
		NumReducers: e.splits(),
		Map: func(line string, emit func(k, v string)) error {
			f := strings.Split(line, ",")
			if f[2] != "1" {
				return nil
			}
			emit(pad(f[1]), f[0])
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strings.Join(values, ","))
			return nil
		},
	}
	goOut, err := Run(ctx, goJob, e.Sched)
	if err != nil {
		return nil, err
	}
	members := make([][]int32, e.numTerms)
	for _, part := range goOut {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			t, err := parsePadded(line[:tab])
			if err != nil {
				return nil, err
			}
			var gs []int32
			for _, f := range strings.Split(line[tab+1:], ",") {
				g, err := strconv.Atoi(f)
				if err != nil {
					return nil, err
				}
				gs = append(gs, int32(g))
			}
			sortInt32(gs)
			members[t] = gs
		}
	}
	return members, nil
}

// GeneMeta implements plan.Physical by parsing the genes text table.
func (e *Engine) GeneMeta(_ context.Context) (engine.GeneMeta, error) {
	fns := make([]int64, e.numGenes)
	for _, line := range e.genes {
		f := strings.Split(line, ",")
		id, _ := strconv.Atoi(f[0])
		fns[id], _ = strconv.ParseInt(f[4], 10, 64)
	}
	return mrFuncLookup{fns}, nil
}

// RunRegression implements plan.Physical: normal equations via MR over
// [1 | X] row files, solved in the driver, with R² from a residual-sum job.
func (e *Engine) RunRegression(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	sw.StartAnalytics()
	xi := linalg.AddInterceptColumn(x)
	matrix := matrixLines(xi, e.splits())
	k := xi.Cols
	gram, aty, err := e.gramJob(ctx, matrix, k, y)
	if err != nil {
		return nil, 0, err
	}
	beta, err := solveSymmetric(gram, aty)
	if err != nil {
		return nil, 0, err
	}
	ssRes, err := e.ssResJob(ctx, matrix, beta, y)
	if err != nil {
		return nil, 0, err
	}
	my := linalg.Mean(y)
	ssTot := 0.0
	for _, v := range y {
		ssTot += (v - my) * (v - my)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return beta, r2, nil
}

// RunCovariance implements plan.Physical: column means then centered-gram
// partials, each a full MR job over the text matrix.
func (e *Engine) RunCovariance(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	sw.StartAnalytics()
	matrix := matrixLines(x, e.splits())
	means, err := e.colMeansJob(ctx, matrix, x.Cols, x.Rows)
	if err != nil {
		return nil, err
	}
	cov, err := e.centeredGramJob(ctx, matrix, x.Cols, means)
	if err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(x.Rows-1))
	return cov, nil
}

// RunSVD implements plan.Physical: Lanczos with one MR job per mat-vec
// (Mahout's DistributedLanczos shape).
func (e *Engine) RunSVD(ctx context.Context, sw *engine.StopWatch, a *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	sw.StartAnalytics()
	op := &mrATAOperator{ctx: ctx, e: e, matrix: matrixLines(a, e.splits()), k: a.Cols}
	eig, err := linalg.Lanczos(op, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed})
	if op.err != nil {
		return nil, op.err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	return sv, nil
}

// RunBicluster is not registered (Capabilities omits the kernel); it exists
// only to satisfy plan.Physical and reports the configuration gap.
func (e *Engine) RunBicluster(context.Context, *engine.StopWatch, *linalg.Matrix, int, uint64) ([]bicluster.Bicluster, error) {
	return nil, engine.ErrUnsupported
}

// RunStats implements plan.Physical: the enrichment test runs driver-side
// over the job-computed means and members.
func (e *Engine) RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	sw.StartAnalytics()
	return engine.EnrichmentTest(ctx, means, members, sampled)
}

// PhysicalName implements plan.Physical.
func (e *Engine) PhysicalName(k plan.OpKind) string {
	switch k {
	case plan.OpSelectPred:
		return "map-only filter job"
	case plan.OpScanTable:
		return "text-table parse"
	case plan.OpSamplePatients:
		return "patient-id modulus"
	case plan.OpPivotMicro:
		return "broadcast join + restructure job"
	case plan.OpKernelRegression, plan.OpKernelCovariance, plan.OpKernelSVD, plan.OpKernelStats:
		return "Mahout-style MR job chain"
	case plan.OpKernelBicluster:
		return "unsupported"
	case plan.OpTopKByAbs:
		return "shared covariance summary"
	case plan.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
