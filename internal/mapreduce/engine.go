package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// DefaultSplits is the number of HDFS-block splits per table.
const DefaultSplits = 8

// Engine is the Hadoop configuration: tables are text files (line-oriented,
// comma-separated, as Hive external tables), data management runs as
// Hive-style MR jobs, and analytics as Mahout-style MR jobs. Biclustering is
// unsupported ("Hadoop and Postgres + Madlib do not provide sufficient
// analytics functions to run the biclustering query").
type Engine struct {
	// Splits is the number of input splits (default 8).
	Splits int
	// Workers is the map/reduce slot count of the default single-node
	// scheduler (0 = the GENBASE_PARALLEL / NumCPU default). Ignored when
	// Sched is set explicitly. Answers are identical at any value.
	Workers int
	// Sched places map/reduce waves; nil runs single-node on Workers slots.
	Sched TaskScheduler
	// NameSuffix distinguishes multi-node variants in reports.
	NameSuffix string

	micro    [][]string // splits of "g,p,v" lines
	patients []string
	genes    []string
	goLines  [][]string

	numPats, numGenes, numTerms int
}

// New creates a single-node Hadoop engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "hadoop" + e.NameSuffix }

// Supports implements engine.Engine, derived from the registered physical
// operators: the biclustering kernel is absent from Capabilities (ops.go),
// so any plan containing it is unsupported — no hardcoded query switch.
func (e *Engine) Supports(q engine.QueryID) bool { return plan.Supports(e.Capabilities(), q) }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// SetWorkers pins the map/reduce slot count (serve.Server uses it to split
// the host's worker budget across admission slots). It also re-sizes an
// already-installed default LocalScheduler, since Load materializes Workers
// into it. Call before concurrent queries begin.
func (e *Engine) SetWorkers(n int) {
	e.Workers = n
	if ls, ok := e.Sched.(LocalScheduler); ok {
		ls.Workers = n
		e.Sched = ls
	}
}

func (e *Engine) splits() int {
	if e.Splits > 0 {
		return e.Splits
	}
	return DefaultSplits
}

// Load implements engine.Engine: every table becomes text lines in HDFS
// style.
func (e *Engine) Load(ds *datagen.Dataset) error {
	if e.Sched == nil {
		e.Sched = LocalScheduler{Workers: e.Workers}
	}
	p, g := ds.Dims.Patients, ds.Dims.Genes
	lines := make([]string, 0, p*g)
	var sb strings.Builder
	for pi := 0; pi < p; pi++ {
		row := ds.Expression.Row(pi)
		for gi, v := range row {
			sb.Reset()
			sb.WriteString(strconv.Itoa(gi))
			sb.WriteByte(',')
			sb.WriteString(strconv.Itoa(pi))
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			lines = append(lines, sb.String())
		}
	}
	e.micro = SplitLines(lines, e.splits())

	e.patients = make([]string, p)
	for i, pt := range ds.Patients {
		e.patients[i] = fmt.Sprintf("%d,%d,%d,%d,%d,%s", pt.ID, pt.Age, pt.Gender, pt.Zipcode,
			pt.DiseaseID, strconv.FormatFloat(pt.DrugResponse, 'g', -1, 64))
	}
	e.genes = make([]string, g)
	for i, gn := range ds.Genes {
		e.genes[i] = fmt.Sprintf("%d,%d,%d,%d,%d", gn.ID, gn.Target, gn.Position, gn.Length, gn.Function)
	}
	var goL []string
	for gi := 0; gi < g; gi++ {
		for t := 0; t < ds.Dims.GOTerms; t++ {
			if ds.GOAt(gi, t) == 1 {
				goL = append(goL, strconv.Itoa(gi)+","+strconv.Itoa(t)+",1")
			}
		}
	}
	e.goLines = SplitLines(goL, e.splits())
	e.numPats, e.numGenes, e.numTerms = p, g, ds.Dims.GOTerms
	return nil
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this engine's physical operators (ops.go).
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.micro == nil {
		return nil, fmt.Errorf("mapreduce: not loaded")
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx, e, pl)
}

// --- Hive-style data management jobs ---

// joinPivotJob joins the microarray with gene/patient id sets (broadcast
// map-side join, as Hive does for small dimension tables) and reduces by
// patient into dense row lines "patient \t v1,v2,...,vk" (the restructure
// step). The driver then parses the rows it needs.
func (e *Engine) joinPivotJob(ctx context.Context, geneIDs, patientIDs []int64) (*linalg.Matrix, error) {
	gIdx := make(map[int64]int, len(geneIDs))
	for i, id := range geneIDs {
		gIdx[id] = i
	}
	var pIdx map[int64]int
	if patientIDs != nil {
		pIdx = make(map[int64]int, len(patientIDs))
		for i, id := range patientIDs {
			pIdx[id] = i
		}
	}
	k := len(geneIDs)
	job := &Job{
		Name:        "hive-join-pivot",
		Input:       e.micro,
		NumReducers: e.splits(),
		Map: func(line string, emit func(k2, v string)) error {
			c1 := strings.IndexByte(line, ',')
			c2 := c1 + 1 + strings.IndexByte(line[c1+1:], ',')
			g, err := strconv.ParseInt(line[:c1], 10, 64)
			if err != nil {
				return err
			}
			gi, ok := gIdx[g]
			if !ok {
				return nil
			}
			p, err := strconv.ParseInt(line[c1+1:c2], 10, 64)
			if err != nil {
				return err
			}
			if pIdx != nil {
				if _, ok := pIdx[p]; !ok {
					return nil
				}
			}
			emit(pad(line[c1+1:c2]), strconv.Itoa(gi)+":"+line[c2+1:])
			return nil
		},
		Reduce: func(key string, values []string, emit func(k2, v string)) error {
			row := make([]string, k)
			for i := range row {
				row[i] = "0"
			}
			for _, v := range values {
				colon := strings.IndexByte(v, ':')
				gi, err := strconv.Atoi(v[:colon])
				if err != nil {
					return err
				}
				row[gi] = v[colon+1:]
			}
			emit(key, strings.Join(row, ","))
			return nil
		},
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, err
	}
	// Driver: parse row lines into the dense matrix.
	nRows := e.numPats
	if patientIDs != nil {
		nRows = len(patientIDs)
	}
	m := linalg.NewMatrix(nRows, k)
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			pi, err := parsePadded(line[:tab])
			if err != nil {
				return nil, err
			}
			p := int64(pi)
			ri := int(p)
			if pIdx != nil {
				ri = pIdx[p]
			}
			// Columnar decode straight into the matrix row — no []string
			// intermediary (see parseFloatFields).
			if err := parseFloatFields(line[tab+1:], m.Row(ri)); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// pad zero-pads numeric string keys so lexicographic key order matches
// numeric order (Hadoop sorts keys as bytes).
func pad(s string) string {
	const w = 10
	if len(s) >= w {
		return s
	}
	return strings.Repeat("0", w-len(s)) + s
}

func collectIDs(parts [][]string) ([]int64, error) {
	var ids []int64
	for _, part := range parts {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			id, err := parsePadded(line[:tab])
			if err != nil {
				return nil, err
			}
			ids = append(ids, int64(id))
		}
	}
	// Reducer partitions interleave keys; sort numerically.
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids, nil
}
