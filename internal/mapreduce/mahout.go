package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// The Mahout-style analytics: every kernel is a chain of MR jobs over text
// matrix rows, with in-mapper combining for partial aggregates and no BLAS
// anywhere — "matrix operations are not done through a high performance
// linear algebra package".

// matrixLines renders a dense matrix as Mahout-style row files
// "rowid \t v1,v2,..." split for MR input. This materialization-to-text
// between DM and analytics jobs is part of Hadoop's cost.
func matrixLines(m *linalg.Matrix, splits int) [][]string {
	lines := make([]string, m.Rows)
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.Reset()
		sb.WriteString(pad(strconv.Itoa(i)))
		sb.WriteByte('\t')
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		lines[i] = sb.String()
	}
	return SplitLines(lines, splits)
}

func parseRowLine(line string, dst []float64) (int, error) {
	tab := strings.IndexByte(line, '\t')
	id, err := parsePadded(line[:tab])
	if err != nil {
		return 0, err
	}
	if err := parseFloatFields(line[tab+1:], dst); err != nil {
		return 0, err
	}
	return id, nil
}

// parseFloatFields decodes a comma-separated float row into dst in place —
// the text engine's columnar batch decode. Unlike strings.Split it
// allocates nothing: every Mahout-style job parses each matrix row through
// here, so the old per-row []string garbage is gone from the whole MR
// analytics path.
func parseFloatFields(s string, dst []float64) error {
	j, start := 0, 0
	for k := 0; k <= len(s); k++ {
		if k == len(s) || s[k] == ',' {
			if j >= len(dst) {
				return fmt.Errorf("mapreduce: row has more than %d fields", len(dst))
			}
			v, err := strconv.ParseFloat(s[start:k], 64)
			if err != nil {
				return err
			}
			dst[j] = v
			j++
			start = k + 1
		}
	}
	if j != len(dst) {
		return fmt.Errorf("mapreduce: row has %d fields, want %d", j, len(dst))
	}
	return nil
}

func parsePadded(s string) (int, error) {
	t := strings.TrimLeft(s, "0")
	if t == "" {
		return 0, nil
	}
	return strconv.Atoi(t)
}

// gramJob computes XᵀX and Xᵀy partials per mapper and reduces them — the
// normal-equation approach Mahout-style regression takes.
func (e *Engine) gramJob(ctx context.Context, matrix [][]string, k int, y []float64) (*linalg.Matrix, []float64, error) {
	job := &Job{
		Name:        "mahout-gram",
		Input:       matrix,
		NumReducers: e.splits(),
		MapSplit: func(split []string, emit func(key, v string)) error {
			gram := make([]float64, k*k)
			aty := make([]float64, k)
			row := make([]float64, k)
			for ln, line := range split {
				if ln%1024 == 0 {
					if err := engine.CheckCtx(ctx); err != nil {
						return err
					}
				}
				id, err := parseRowLine(line, row)
				if err != nil {
					return err
				}
				for i := 0; i < k; i++ {
					vi := row[i]
					if vi == 0 {
						continue
					}
					for j := i; j < k; j++ {
						gram[i*k+j] += vi * row[j]
					}
				}
				if y != nil {
					yi := y[id]
					for i := 0; i < k; i++ {
						aty[i] += yi * row[i]
					}
				}
			}
			for i := 0; i < k; i++ {
				for j := i; j < k; j++ {
					emit("g:"+pad(strconv.Itoa(i))+":"+pad(strconv.Itoa(j)),
						strconv.FormatFloat(gram[i*k+j], 'g', -1, 64))
				}
			}
			if y != nil {
				for i := 0; i < k; i++ {
					emit("y:"+pad(strconv.Itoa(i)), strconv.FormatFloat(aty[i], 'g', -1, 64))
				}
			}
			return nil
		},
		Reduce: sumReduce,
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, nil, err
	}
	gram := linalg.NewMatrix(k, k)
	aty := make([]float64, k)
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			key := line[:tab]
			v, err := strconv.ParseFloat(line[tab+1:], 64)
			if err != nil {
				return nil, nil, err
			}
			switch key[0] {
			case 'g':
				rest := key[2:]
				colon := strings.IndexByte(rest, ':')
				i, _ := parsePadded(rest[:colon])
				j, _ := parsePadded(rest[colon+1:])
				gram.Set(i, j, v)
				gram.Set(j, i, v)
			case 'y':
				i, _ := parsePadded(key[2:])
				aty[i] = v
			}
		}
	}
	return gram, aty, nil
}

// sumReduce adds string-encoded float values (with string round-trips, as a
// streaming reducer would).
func sumReduce(key string, values []string, emit func(k, v string)) error {
	s := 0.0
	for _, v := range values {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		s += f
	}
	emit(key, strconv.FormatFloat(s, 'g', -1, 64))
	return nil
}

// colMeansJob computes per-column means of a matrix file.
func (e *Engine) colMeansJob(ctx context.Context, matrix [][]string, k int, nRows int) ([]float64, error) {
	job := &Job{
		Name:        "mahout-colmeans",
		Input:       matrix,
		NumReducers: e.splits(),
		MapSplit: func(split []string, emit func(key, v string)) error {
			sums := make([]float64, k)
			row := make([]float64, k)
			for _, line := range split {
				if _, err := parseRowLine(line, row); err != nil {
					return err
				}
				for j, v := range row {
					sums[j] += v
				}
			}
			for j, s := range sums {
				emit(pad(strconv.Itoa(j)), strconv.FormatFloat(s, 'g', -1, 64))
			}
			return nil
		},
		Reduce: sumReduce,
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, err
	}
	means := make([]float64, k)
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			j, err := parsePadded(line[:tab])
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(line[tab+1:], 64)
			if err != nil {
				return nil, err
			}
			means[j] = v / float64(nRows)
		}
	}
	return means, nil
}

// centeredGramJob computes Σ (x−mean)(x−mean)ᵀ partials — covariance before
// the 1/(n−1) scale.
func (e *Engine) centeredGramJob(ctx context.Context, matrix [][]string, k int, means []float64) (*linalg.Matrix, error) {
	job := &Job{
		Name:        "mahout-centered-gram",
		Input:       matrix,
		NumReducers: e.splits(),
		MapSplit: func(split []string, emit func(key, v string)) error {
			gram := make([]float64, k*k)
			row := make([]float64, k)
			for ln, line := range split {
				if ln%256 == 0 {
					if err := engine.CheckCtx(ctx); err != nil {
						return err
					}
				}
				if _, err := parseRowLine(line, row); err != nil {
					return err
				}
				for j := range row {
					row[j] -= means[j]
				}
				for i := 0; i < k; i++ {
					vi := row[i]
					if vi == 0 {
						continue
					}
					for j := i; j < k; j++ {
						gram[i*k+j] += vi * row[j]
					}
				}
			}
			for i := 0; i < k; i++ {
				if err := engine.CheckCtx(ctx); err != nil {
					return err
				}
				for j := i; j < k; j++ {
					emit("c:"+pad(strconv.Itoa(i))+":"+pad(strconv.Itoa(j)),
						strconv.FormatFloat(gram[i*k+j], 'g', -1, 64))
				}
			}
			return nil
		},
		Reduce: sumReduce,
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return nil, err
	}
	gram := linalg.NewMatrix(k, k)
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			key := line[2:tab]
			colon := strings.IndexByte(key, ':')
			i, _ := parsePadded(key[:colon])
			j, _ := parsePadded(key[colon+1:])
			v, err := strconv.ParseFloat(line[tab+1:], 64)
			if err != nil {
				return nil, err
			}
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	return gram, nil
}

// mrATAOperator runs one MR job per Lanczos iteration: each mapper parses
// its rows, computes y_i = row·x and accumulates z += y_i·row locally, then
// reducers sum the partial z vectors. Exactly Mahout's DistributedLanczos
// shape.
type mrATAOperator struct {
	ctx    context.Context
	e      *Engine
	matrix [][]string
	k      int
	err    error
}

// Dim implements linalg.LinearOperator.
func (o *mrATAOperator) Dim() int { return o.k }

// Apply implements linalg.LinearOperator.
func (o *mrATAOperator) Apply(x []float64) []float64 {
	out := make([]float64, o.k)
	if o.err != nil {
		return out
	}
	job := &Job{
		Name:        "mahout-lanczos-matvec",
		Input:       o.matrix,
		NumReducers: o.e.splits(),
		MapSplit: func(split []string, emit func(key, v string)) error {
			z := make([]float64, o.k)
			row := make([]float64, o.k)
			for ln, line := range split {
				if ln%1024 == 0 {
					if err := engine.CheckCtx(o.ctx); err != nil {
						return err
					}
				}
				if _, err := parseRowLine(line, row); err != nil {
					return err
				}
				yi := 0.0
				for j, v := range row {
					yi += v * x[j]
				}
				for j, v := range row {
					z[j] += yi * v
				}
			}
			for j, v := range z {
				emit(pad(strconv.Itoa(j)), strconv.FormatFloat(v, 'g', -1, 64))
			}
			return nil
		},
		Reduce: sumReduce,
	}
	res, err := Run(o.ctx, job, o.e.Sched)
	if err != nil {
		o.err = err
		return out
	}
	for _, part := range res {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			j, err := parsePadded(line[:tab])
			if err != nil {
				o.err = err
				return out
			}
			v, err := strconv.ParseFloat(line[tab+1:], 64)
			if err != nil {
				o.err = err
				return out
			}
			out[j] = v
		}
	}
	return out
}

// ssResJob sums squared residuals with mapper-local accumulation.
func (e *Engine) ssResJob(ctx context.Context, matrix [][]string, beta, y []float64) (float64, error) {
	k := len(beta)
	job := &Job{
		Name:  "mahout-ssres",
		Input: matrix,
		MapSplit: func(split []string, emit func(key, v string)) error {
			row := make([]float64, k)
			ss := 0.0
			for _, line := range split {
				id, err := parseRowLine(line, row)
				if err != nil {
					return err
				}
				pred := 0.0
				for j, v := range row {
					pred += v * beta[j]
				}
				d := y[id] - pred
				ss += d * d
			}
			emit("ssres", strconv.FormatFloat(ss, 'g', -1, 64))
			return nil
		},
		Reduce: sumReduce,
	}
	out, err := Run(ctx, job, e.Sched)
	if err != nil {
		return 0, err
	}
	for _, part := range out {
		for _, line := range part {
			tab := strings.IndexByte(line, '\t')
			return strconv.ParseFloat(line[tab+1:], 64)
		}
	}
	return 0, fmt.Errorf("mapreduce: ssres job produced no output")
}

// solveSymmetric solves Gx = b for a symmetric positive-definite G by QR.
func solveSymmetric(g *linalg.Matrix, b []float64) ([]float64, error) {
	qr, err := linalg.NewQR(g)
	if err != nil {
		return nil, err
	}
	return qr.Solve(b)
}

type mrFuncLookup struct{ fns []int64 }

func (f mrFuncLookup) FunctionOf(g int) int64 { return f.fns[g] }

func allIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// sumCountReduce folds "sum:count" encoded values.
func sumCountReduce(key string, values []string, emit func(k, v string)) error {
	sum, cnt := 0.0, 0.0
	for _, v := range values {
		colon := strings.LastIndexByte(v, ':')
		s, err := strconv.ParseFloat(v[:colon], 64)
		if err != nil {
			return err
		}
		c, err := strconv.ParseFloat(v[colon+1:], 64)
		if err != nil {
			return err
		}
		sum += s
		cnt += c
	}
	emit(key, strconv.FormatFloat(sum, 'g', -1, 64)+":"+strconv.FormatFloat(cnt, 'g', -1, 64))
	return nil
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
