package rengine

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// DefaultMaxCells models R's memory wall at our 1/20 data scale: the medium
// preset (1000×750 plus triples) fits, the large preset (2000×1500 = 3 M
// matrix cells + 9 M triple cells) does not — reproducing the paper's
// "Vanilla R cannot scale to the large dataset".
const DefaultMaxCells = 8_000_000

// Engine is the Vanilla R configuration.
type Engine struct {
	// MaxCells caps the total number of dataframe/matrix cells resident at
	// once. 0 means DefaultMaxCells; negative means unlimited.
	MaxCells int64
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value.
	Workers int

	ds    *datagen.Dataset
	micro *Frame // gene, patient, value triples (relational form, §3.1.1)
	pats  *Frame
	genes *Frame
	goTri *Frame // gene, term sparse membership triples

	// Zero-copy path state: Load writes the value triple column
	// patient-major dense, so vals doubles as the expression matrix in
	// row-major layout (vals[pi*numGenes+gi]).
	vals      []float64
	denseVals bool
}

// New creates an unloaded engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "vanilla-r" }

// Supports implements engine.Engine, derived from the registered physical
// operators (ops.go): R implements the full vocabulary.
func (e *Engine) Supports(q engine.QueryID) bool { return plan.Supports(e.Capabilities(), q) }

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

func (e *Engine) maxCells() int64 {
	if e.MaxCells == 0 {
		return DefaultMaxCells
	}
	if e.MaxCells < 0 {
		return 1 << 62
	}
	return e.MaxCells
}

// Load ingests the dataset as dataframes in the paper's relational form. The
// microarray becomes (gene, patient, value) triples, exactly what R's merge
// and reshape operate on; exceeding the cell budget fails the load, as R
// does on the large dataset.
func (e *Engine) Load(ds *datagen.Dataset) error {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	triples := int64(p) * int64(g)
	// Triples (3 cells each) plus the dense matrix the queries will pivot
	// into must fit.
	if triples*3+triples > e.maxCells() {
		return fmt.Errorf("%w: %d cells needed, limit %d", engine.ErrOutOfMemory, triples*4, e.maxCells())
	}
	e.ds = ds

	geneCol := make([]int64, triples)
	patCol := make([]int64, triples)
	valCol := make([]float64, triples)
	k := 0
	for pi := 0; pi < p; pi++ {
		row := ds.Expression.Row(pi)
		for gi, v := range row {
			geneCol[k] = int64(gi)
			patCol[k] = int64(pi)
			valCol[k] = v
			k++
		}
	}
	e.micro = NewFrame(int(triples)).AddInt("geneid", geneCol).AddInt("patientid", patCol).AddFloat("value", valCol)
	// The loop above wrote valCol patient-major dense; the zero-copy pivot
	// reads it as the expression matrix without touching the triples.
	e.vals = valCol
	e.denseVals = true

	ids := make([]int64, p)
	ages := make([]int64, p)
	genders := make([]int64, p)
	diseases := make([]int64, p)
	resp := make([]float64, p)
	for i, pt := range ds.Patients {
		ids[i] = int64(pt.ID)
		ages[i] = int64(pt.Age)
		genders[i] = int64(pt.Gender)
		diseases[i] = int64(pt.DiseaseID)
		resp[i] = pt.DrugResponse
	}
	e.pats = NewFrame(p).AddInt("patientid", ids).AddInt("age", ages).
		AddInt("gender", genders).AddInt("diseaseid", diseases).AddFloat("drugresponse", resp)

	gids := make([]int64, g)
	fns := make([]int64, g)
	targets := make([]int64, g)
	for i, gn := range ds.Genes {
		gids[i] = int64(gn.ID)
		fns[i] = int64(gn.Function)
		targets[i] = int64(gn.Target)
	}
	e.genes = NewFrame(g).AddInt("geneid", gids).AddInt("function", fns).AddInt("target", targets)

	var goGene, goTerm []int64
	for gi := 0; gi < g; gi++ {
		for t := 0; t < ds.Dims.GOTerms; t++ {
			if ds.GOAt(gi, t) == 1 {
				goGene = append(goGene, int64(gi))
				goTerm = append(goTerm, int64(t))
			}
		}
	}
	e.goTri = NewFrame(len(goGene)).AddInt("geneid", goGene).AddInt("goid", goTerm)
	return nil
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this engine's physical operators (ops.go).
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.ds == nil {
		return nil, fmt.Errorf("rengine: not loaded")
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx, e, pl)
}

// selectGenes applies the Q1/Q4 metadata predicate, returning ascending ids.
// pivotGenes restructures the microarray triples into a dense matrix holding
// the given genes (columns, in the given order; nil = all) for the given
// patients (rows, in the given order; nil = all, ascending id). This is the
// paper's "restructure the information as a matrix" step, R's reshape/acast.
// With the zero-copy knob on, the full pivot is a view over the value column
// and subsets are contiguous row copies into pooled scratch; the triple scan
// below is the copy-path ablation. Cell values are identical either way.
func (e *Engine) pivotGenes(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	if e.denseVals && engine.ZeroCopyEnabled() {
		// Zero-copy pivot over the patient-major dense value column:
		// identity selections are views, subsets are pooled gathers.
		return engine.PivotDense(ctx, e.vals, e.pats.Len(), e.genes.Len(), patientIDs, geneIDs)
	}
	nPat := e.pats.Len()
	patientIdx := allPatientsIndex(nPat)
	if patientIDs != nil {
		nPat = len(patientIDs)
		patientIdx = indexOf(patientIDs)
	}
	geneIdx := allPatientsIndex(e.genes.Len()) // identity index over genes
	if geneIDs != nil {
		geneIdx = indexOf(geneIDs)
	}
	m := linalg.NewMatrix(nPat, len(geneIdx))
	gc := e.micro.Int("geneid")
	pc := e.micro.Int("patientid")
	vc := e.micro.Float("value")
	for k := range vc {
		if k%65536 == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return nil, err
			}
		}
		gi, ok := geneIdx[gc[k]]
		if !ok {
			continue
		}
		pi, ok := patientIdx[pc[k]]
		if !ok {
			continue
		}
		m.Set(pi, gi, vc[k])
	}
	return m, nil
}

func allPatientsIndex(n int) map[int64]int {
	idx := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		idx[int64(i)] = i
	}
	return idx
}

func indexOf(ids []int64) map[int64]int {
	idx := make(map[int64]int, len(ids))
	for i, v := range ids {
		idx[v] = i
	}
	return idx
}

func (e *Engine) checkMatrixBudget(rows, cols int) error {
	if int64(rows)*int64(cols) > e.maxCells() {
		return fmt.Errorf("%w: pivot of %d×%d cells", engine.ErrOutOfMemory, rows, cols)
	}
	return nil
}

// funcLookup adapts the genes frame to engine.GeneMeta.
type funcLookup struct{ fn []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fn[g] }
