package rengine

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// Vanilla R's physical operators (plan.Physical): selections and scans walk
// the dataframes directly, the pivot is R's reshape/acast over the triple
// frame (or a view over the dense value column on the zero-copy path), and
// kernels run in-process — subject to R's memory wall: the cell budget is
// charged before any dataframe or matrix materializes, reproducing "Vanilla
// R cannot scale to the large dataset".

// Capabilities implements plan.Physical: R implements every operator.
func (e *Engine) Capabilities() plan.OpSet { return plan.AllOps() }

// Dims implements plan.Physical.
func (e *Engine) Dims() (int, int) { return e.pats.Len(), e.genes.Len() }

// SelectIDs implements plan.Physical: a dataframe scan applying the
// conjunction per row, returning ascending ids.
func (e *Engine) SelectIDs(_ context.Context, table string, preds []plan.Pred) ([]int64, error) {
	var f *Frame
	var idName string
	switch table {
	case plan.TableGenes:
		f, idName = e.genes, "geneid"
	case plan.TablePatients:
		f, idName = e.pats, "patientid"
	default:
		return nil, fmt.Errorf("rengine: no dataframe for table %q", table)
	}
	cols := make([][]int64, len(preds))
	for i, p := range preds {
		cols[i] = f.Int(p.Col)
	}
	ids := f.Int(idName)
	var out []int64
	for i := 0; i < f.Len(); i++ {
		ok := true
		for j, p := range preds {
			if !p.Eval(cols[j][i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ids[i])
		}
	}
	return out, nil
}

// ScanFloats implements plan.Physical over the patients dataframe.
func (e *Engine) ScanFloats(_ context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != plan.TablePatients || col != plan.ColDrugResponse {
		return nil, fmt.Errorf("rengine: no physical scan for %s.%s", table, col)
	}
	y := e.pats.Float("drugresponse")
	if ids == nil {
		return y, nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = y[id]
	}
	return out, nil
}

// Pivot implements plan.Physical: R's reshape of the triples into a dense
// matrix, after charging the result against the cell budget.
func (e *Engine) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	rows := e.pats.Len()
	if patientIDs != nil {
		rows = len(patientIDs)
	}
	cols := e.genes.Len()
	if geneIDs != nil {
		cols = len(geneIDs)
	}
	if err := e.checkMatrixBudget(rows, cols); err != nil {
		return nil, err
	}
	return e.pivotGenes(ctx, patientIDs, geneIDs)
}

// SampleMeans implements plan.Physical: an R aggregate over the merged
// selection, straight from the triples (or the contiguous dense rows on the
// zero-copy path — same ascending-patient accumulation order, bitwise
// identical means).
func (e *Engine) SampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	nPat := e.pats.Len()
	var sampled []int64
	for i := 0; i < nPat; i += step {
		sampled = append(sampled, int64(i))
	}
	g := e.genes.Len()
	sums := make([]float64, g)
	if e.denseVals && engine.ZeroCopyEnabled() {
		for k, pid := range sampled {
			if k%64 == 0 {
				if err := engine.CheckCtx(ctx); err != nil {
					return nil, 0, err
				}
			}
			row := e.vals[int(pid)*g : (int(pid)+1)*g]
			for j, v := range row {
				sums[j] += v
			}
		}
	} else {
		inSample := make(map[int64]bool, len(sampled))
		for _, s := range sampled {
			inSample[s] = true
		}
		gc := e.micro.Int("geneid")
		pc := e.micro.Int("patientid")
		vc := e.micro.Float("value")
		for k := range vc {
			if k%65536 == 0 {
				if err := engine.CheckCtx(ctx); err != nil {
					return nil, 0, err
				}
			}
			if inSample[pc[k]] {
				sums[gc[k]] += vc[k]
			}
		}
	}
	for j := range sums {
		sums[j] /= float64(len(sampled))
	}
	return sums, len(sampled), nil
}

// GOMembers implements plan.Physical: group the GO membership triples by
// term.
func (e *Engine) GOMembers(_ context.Context) ([][]int32, error) {
	members := make([][]int32, e.ds.Dims.GOTerms)
	goGene := e.goTri.Int("geneid")
	goTerm := e.goTri.Int("goid")
	for k := range goGene {
		members[goTerm[k]] = append(members[goTerm[k]], int32(goGene[k]))
	}
	return members, nil
}

// GeneMeta implements plan.Physical.
func (e *Engine) GeneMeta(_ context.Context) (engine.GeneMeta, error) {
	return funcLookup{e.genes.Int("function")}, nil
}

// RunRegression implements plan.Physical, charging the intercept-augmented
// design matrix against the cell budget (lm materializes it).
func (e *Engine) RunRegression(_ context.Context, sw *engine.StopWatch, x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	if err := e.checkMatrixBudget(x.Rows, x.Cols+1); err != nil {
		linalg.PutMatrix(x)
		return nil, 0, err
	}
	sw.StartAnalytics()
	return engine.FitLeastSquares(x, y)
}

// RunCovariance implements plan.Physical, charging the gene×gene result
// against the cell budget.
func (e *Engine) RunCovariance(_ context.Context, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	sw.StartAnalytics()
	g := x.Cols
	if int64(g)*int64(g) > e.maxCells() {
		linalg.PutMatrix(x)
		return nil, fmt.Errorf("%w: %d×%d covariance matrix", engine.ErrOutOfMemory, g, g)
	}
	return engine.CovarianceHost(x, e.Workers), nil
}

// RunSVD implements plan.Physical.
func (e *Engine) RunSVD(_ context.Context, sw *engine.StopWatch, a *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	sw.StartAnalytics()
	return engine.TopKSingularValues(a, k, seed, e.Workers)
}

// RunBicluster implements plan.Physical.
func (e *Engine) RunBicluster(_ context.Context, sw *engine.StopWatch, x *linalg.Matrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	sw.StartAnalytics()
	blocks, err := bicluster.Run(x, bicluster.Options{MaxBiclusters: maxB, Seed: seed})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// RunStats implements plan.Physical.
func (e *Engine) RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	sw.StartAnalytics()
	return engine.EnrichmentTest(ctx, means, members, sampled)
}

// PhysicalName implements plan.Physical.
func (e *Engine) PhysicalName(k plan.OpKind) string {
	switch k {
	case plan.OpSelectPred:
		return "dataframe row scan"
	case plan.OpScanTable:
		return "dataframe column projection"
	case plan.OpSamplePatients:
		return "patient-id modulus"
	case plan.OpPivotMicro:
		return "reshape/acast over triples (budget-charged)"
	case plan.OpKernelRegression, plan.OpKernelCovariance, plan.OpKernelSVD, plan.OpKernelStats, plan.OpKernelBicluster:
		return "in-process R kernel"
	case plan.OpTopKByAbs:
		return "shared covariance summary"
	case plan.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
