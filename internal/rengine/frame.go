// Package rengine is the "Vanilla R" configuration: an in-memory dataframe
// engine whose data management is merge (hash join) and vector filtering, and
// whose analytics call the linalg kernels in-process. Like R, it is single
// threaded, keeps everything memory resident, and has a hard cell limit —
// the stand-in for R's 2³¹−1 array limit and single-node memory wall that
// make the paper's large dataset fail ("R by itself cannot load the data
// into memory").
package rengine

import "fmt"

// Frame is a minimal column-oriented dataframe: parallel typed vectors.
type Frame struct {
	names []string
	ints  map[string][]int64
	flts  map[string][]float64
	n     int
}

// NewFrame creates an empty frame with n rows.
func NewFrame(n int) *Frame {
	return &Frame{ints: make(map[string][]int64), flts: make(map[string][]float64), n: n}
}

// Len returns the row count.
func (f *Frame) Len() int { return f.n }

// AddInt attaches an int64 column.
func (f *Frame) AddInt(name string, col []int64) *Frame {
	if len(col) != f.n {
		panic(fmt.Sprintf("rengine: column %s has %d rows, frame has %d", name, len(col), f.n))
	}
	f.names = append(f.names, name)
	f.ints[name] = col
	return f
}

// AddFloat attaches a float64 column.
func (f *Frame) AddFloat(name string, col []float64) *Frame {
	if len(col) != f.n {
		panic(fmt.Sprintf("rengine: column %s has %d rows, frame has %d", name, len(col), f.n))
	}
	f.names = append(f.names, name)
	f.flts[name] = col
	return f
}

// Int returns an int64 column.
func (f *Frame) Int(name string) []int64 {
	c, ok := f.ints[name]
	if !ok {
		panic(fmt.Sprintf("rengine: no int column %q", name))
	}
	return c
}

// Float returns a float64 column.
func (f *Frame) Float(name string) []float64 {
	c, ok := f.flts[name]
	if !ok {
		panic(fmt.Sprintf("rengine: no float column %q", name))
	}
	return c
}

// Which returns the row indices where pred holds (R's which()).
func (f *Frame) Which(pred func(row int) bool) []int {
	var idx []int
	for i := 0; i < f.n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Subset materializes the rows at idx into a new frame (R's df[idx, ]).
func (f *Frame) Subset(idx []int) *Frame {
	out := NewFrame(len(idx))
	for _, name := range f.names {
		if c, ok := f.ints[name]; ok {
			nc := make([]int64, len(idx))
			for k, i := range idx {
				nc[k] = c[i]
			}
			out.AddInt(name, nc)
			continue
		}
		c := f.flts[name]
		nc := make([]float64, len(idx))
		for k, i := range idx {
			nc[k] = c[i]
		}
		out.AddFloat(name, nc)
	}
	return out
}

// SemiJoinInt returns the indices of rows whose int column value appears in
// keys — the probe side of R's merge() when only membership matters.
func (f *Frame) SemiJoinInt(col string, keys map[int64]bool) []int {
	c := f.Int(col)
	var idx []int
	for i, v := range c {
		if keys[v] {
			idx = append(idx, i)
		}
	}
	return idx
}
