package rengine

import "testing"

func demoFrame() *Frame {
	return NewFrame(4).
		AddInt("id", []int64{0, 1, 2, 3}).
		AddFloat("v", []float64{0.5, 1.5, 2.5, 3.5})
}

func TestFrameColumns(t *testing.T) {
	f := demoFrame()
	if f.Len() != 4 {
		t.Fatalf("len=%d", f.Len())
	}
	if f.Int("id")[2] != 2 || f.Float("v")[3] != 3.5 {
		t.Fatal("column access")
	}
}

func TestFrameMissingColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	demoFrame().Int("nope")
}

func TestFrameLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrame(3).AddInt("x", []int64{1})
}

func TestFrameWhichAndSubset(t *testing.T) {
	f := demoFrame()
	idx := f.Which(func(i int) bool { return f.Int("id")[i]%2 == 0 })
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("which=%v", idx)
	}
	sub := f.Subset(idx)
	if sub.Len() != 2 || sub.Float("v")[1] != 2.5 {
		t.Fatalf("subset wrong: %v", sub.Float("v"))
	}
	// Subset must copy: mutating it leaves the original intact.
	sub.Int("id")[0] = 99
	if f.Int("id")[0] != 0 {
		t.Fatal("subset aliases parent")
	}
}

func TestFrameSemiJoin(t *testing.T) {
	f := demoFrame()
	idx := f.SemiJoinInt("id", map[int64]bool{1: true, 3: true})
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("semijoin=%v", idx)
	}
}
