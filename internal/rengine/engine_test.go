package rengine

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

func loadedEngine(t *testing.T) (*Engine, *datagen.Dataset) {
	t.Helper()
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7}) // 100×100×40
	e := New()
	if err := e.Load(ds); err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestName(t *testing.T) {
	if New().Name() != "vanilla-r" {
		t.Fatal("name")
	}
}

func TestRunBeforeLoadFails(t *testing.T) {
	if _, err := New().Run(context.Background(), engine.Q1Regression, engine.DefaultParams()); err == nil {
		t.Fatal("expected error before load")
	}
}

func TestLoadRespectsCellLimit(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	e := New()
	e.MaxCells = 1000
	if err := e.Load(ds); !errors.Is(err, engine.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestUnlimitedCells(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.2, Seed: 7})
	e := New()
	e.MaxCells = -1
	if err := e.Load(ds); err != nil {
		t.Fatal(err)
	}
}

func TestRegression(t *testing.T) {
	e, _ := loadedEngine(t)
	res, err := e.Run(context.Background(), engine.Q1Regression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.RegressionAnswer)
	if len(ans.SelectedGenes) == 0 {
		t.Fatal("no genes selected")
	}
	if len(ans.Coefficients) != len(ans.SelectedGenes)+1 {
		t.Fatalf("coefficients %d vs genes %d", len(ans.Coefficients), len(ans.SelectedGenes))
	}
	if ans.RSquared <= 0 || ans.RSquared > 1 {
		t.Fatalf("R²=%v out of range", ans.RSquared)
	}
	if res.Timing.DataManagement <= 0 || res.Timing.Analytics <= 0 {
		t.Fatalf("phases not timed: %+v", res.Timing)
	}
}

func TestRegressionFindsSignal(t *testing.T) {
	// With threshold = FunctionRange all genes (including every causal gene)
	// enter the model, so the fit should be strong. Needs patients > genes
	// for the least-squares system to be tall.
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Medium, Scale: 0.2, Seed: 7}) // 200×150
	e := New()
	if err := e.Load(ds); err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	p.FunctionThreshold = datagen.FunctionRange
	res, err := e.Run(context.Background(), engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.RegressionAnswer)
	if ans.RSquared < 0.8 {
		t.Fatalf("expected strong fit with all causal genes, R²=%v", ans.RSquared)
	}
}

func TestCovariance(t *testing.T) {
	e, ds := loadedEngine(t)
	res, err := e.Run(context.Background(), engine.Q2Covariance, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.CovarianceAnswer)
	if ans.NumPairs < 1 {
		t.Fatal("no pairs above threshold")
	}
	total := ds.Dims.Genes * (ds.Dims.Genes - 1) / 2
	// Top 10% should keep roughly 10% of pairs (ties can add a few).
	if ans.NumPairs < total/20 || ans.NumPairs > total/5 {
		t.Fatalf("kept %d of %d pairs", ans.NumPairs, total)
	}
	if len(ans.TopPairs) == 0 {
		t.Fatal("no top pairs reported")
	}
	for _, pr := range ans.TopPairs {
		if pr.GeneA >= pr.GeneB {
			t.Fatal("pairs must be ordered i<j")
		}
		if pr.FunctionA != int64(ds.Genes[pr.GeneA].Function) {
			t.Fatal("metadata join wrong")
		}
	}
}

func TestBiclustering(t *testing.T) {
	e, ds := loadedEngine(t)
	res, err := e.Run(context.Background(), engine.Q3Biclustering, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.BiclusterAnswer)
	if len(ans.Blocks) == 0 {
		t.Fatal("no biclusters found")
	}
	for _, b := range ans.Blocks {
		for _, pid := range b.PatientIDs {
			pt := ds.Patients[pid]
			if pt.Gender != 'M' || pt.Age >= 40 {
				t.Fatalf("patient %d violates the Q3 filter", pid)
			}
		}
		for _, g := range b.GeneIDs {
			if g < 0 || g >= ds.Dims.Genes {
				t.Fatalf("gene id %d out of range", g)
			}
		}
	}
}

func TestSVD(t *testing.T) {
	e, _ := loadedEngine(t)
	res, err := e.Run(context.Background(), engine.Q4SVD, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.SVDAnswer)
	if len(ans.SingularValues) != 10 {
		t.Fatalf("got %d singular values", len(ans.SingularValues))
	}
	for i := 1; i < len(ans.SingularValues); i++ {
		if ans.SingularValues[i] > ans.SingularValues[i-1]+1e-9 {
			t.Fatal("singular values must descend")
		}
	}
	if ans.SingularValues[0] <= 0 {
		t.Fatal("top singular value must be positive")
	}
}

func TestStatistics(t *testing.T) {
	e, ds := loadedEngine(t)
	res, err := e.Run(context.Background(), engine.Q5Statistics, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer.(*engine.StatsAnswer)
	if len(ans.Terms) != ds.Dims.GOTerms {
		t.Fatalf("got %d terms, want %d", len(ans.Terms), ds.Dims.GOTerms)
	}
	if ans.SampledPatients < 1 {
		t.Fatal("empty sample")
	}
	// At least one planted enriched term should surface near the top.
	top := ans.TopEnriched(len(ds.EnrichedTerms) * 3)
	found := false
	for _, ts := range top {
		for _, planted := range ds.EnrichedTerms {
			if ts.Term == planted {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no planted enriched term in top %d", len(top))
	}
}

func TestContextCancellation(t *testing.T) {
	e, _ := loadedEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := e.Run(ctx, engine.Q2Covariance, engine.DefaultParams()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestAllQueriesSupported(t *testing.T) {
	e := New()
	for _, q := range engine.AllQueries() {
		if !e.Supports(q) {
			t.Fatalf("R should support %v", q)
		}
	}
}
